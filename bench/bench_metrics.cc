// Experiment E16 — first-class observability, end to end and self-checking.
//
// One 6-node simulated PIER cluster exercises every export path the metrics
// registry has, and the bench FAILS (exit nonzero) if any of the three
// disagree with an independent count:
//
//   1. SCRAPE: after ingest and a snapshot query, node 0's Prometheus-text
//      endpoint is scraped twice (over the VRI's framed TCP, mid-run) with
//      more work between the scrapes. FAIL if any family in the registry's
//      own snapshot is missing from the scrape body, if any counter series
//      moved backwards between the scrapes, or if the scraped
//      pier_dht_puts_total disagrees with the Dht's own Stats bracket.
//
//   2. SYS.METRICS: node 0 publishes its registry snapshot into the
//      catalog-declared sys.metrics soft-state table; node 2 queries it
//      back with plain SQL. FAIL unless every published counter/gauge
//      sample comes back with exactly the published value.
//
//   3. EXPLAIN ANALYZE: a rehash symmetric-hash join runs to completion and
//      the per-query cost report is checked against wire traffic counted by
//      the DHT and query processor themselves (Δputs + Δsends +
//      Δanswers_forwarded, and the answer-bytes histogram) — ledgers the
//      operator meters never touch. FAIL if messages or answer bytes
//      disagree by more than 10%.
//
// PIER_BENCH_JSON=<path> writes the (virtual-time deterministic) metrics as
// JSON; CI diffs it against the committed bench/BENCH_metrics.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 6;
constexpr int kRows = 48;

int failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  failures++;
}

// Parse a Prometheus text body into {series line key -> value}, collecting
// the families declared by # TYPE lines along the way.
struct ScrapeBody {
  std::map<std::string, double> series;           // "name{labels}" -> value
  std::map<std::string, std::string> family_type; // name -> counter|gauge|...
};

ScrapeBody Parse(const std::string& body) {
  ScrapeBody out;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t sp = rest.find(' ');
        if (sp != std::string::npos)
          out.family_type[rest.substr(0, sp)] = rest.substr(sp + 1);
      }
      continue;
    }
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    out.series[line.substr(0, sp)] = std::atof(line.c_str() + sp + 1);
  }
  return out;
}

// The family a series line belongs to: strip labels, then fold histogram
// sub-series back onto their parent name.
std::string FamilyOf(const std::string& key) {
  std::string name = key.substr(0, key.find('{'));
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    size_t n = std::strlen(suffix);
    if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0)
      return name.substr(0, name.size() - n);
  }
  return name;
}

std::string Scrape(SimPier* net, uint32_t from, uint32_t target) {
  std::string body;
  bool done = false;
  ScrapeMetrics(net->qp(from)->vri(), net->metrics_address(target),
                [&](std::string b) {
                  body = std::move(b);
                  done = true;
                });
  for (int i = 0; i < 200 && !done; ++i) net->RunFor(10 * kMillisecond);
  if (!done) Fail("scrape of node " + std::to_string(target) + " timed out");
  return body;
}

struct WireCount {
  uint64_t puts = 0, sends = 0, answers_forwarded = 0;
  double answer_bytes = 0;
};

WireCount CountWire(SimPier* net) {
  WireCount w;
  for (uint32_t i = 0; i < net->size(); ++i) {
    Dht::Stats d = net->dht(i)->stats();
    w.puts += d.puts;
    w.sends += d.sends;
    w.answers_forwarded += net->qp(i)->stats().answers_forwarded;
    for (const MetricSample& s : net->metrics(i)->Snapshot())
      if (s.name == "pier_query_answer_bytes") w.answer_bytes += s.sum;
  }
  return w;
}

void Run() {
  bench::Title("E16: observability — scrape, sys.metrics and explain-analyze "
               "against independent counts");

  SimPier::Options opts;
  opts.sim.seed = 616;
  opts.seed_routing = true;
  opts.settle_time = 8 * kSecond;
  opts.metrics_port = 9100;
  SimPier net(kNodes, opts);

  if (!net.catalog()->Register(TableSpec("ev").PartitionBy({"k"})).ok() ||
      !net.catalog()->Register(TableSpec("r").PartitionBy({"a"})).ok() ||
      !net.catalog()->Register(TableSpec("s").PartitionBy({"b"})).ok()) {
    std::fprintf(stderr, "catalog registration failed\n");
    std::exit(1);
  }
  for (int i = 0; i < kRows; ++i) {
    Tuple t("ev");
    t.Append("k", Value::Int64(i));
    t.Append("v", Value::Int64(i * 7));
    if (!net.client(i % kNodes)->Publish("ev", t).ok()) {
      std::fprintf(stderr, "publish failed\n");
      std::exit(1);
    }
  }
  net.RunFor(2 * kSecond);

  // A first query moves the query-processor counters before the scrape.
  auto warm = net.client(1)->Query(Sql("SELECT * FROM ev TIMEOUT 5s"));
  size_t warm_rows = bench::Check(warm, "warm query").Collect().size();
  if (warm_rows != static_cast<size_t>(kRows))
    Fail("warm snapshot returned " + std::to_string(warm_rows) + " of " +
         std::to_string(kRows) + " rows");

  // --- Check 1: scrape completeness, bracket, monotonicity ---------------
  uint64_t puts_before = net.dht(0)->stats().puts;
  std::string body1 = Scrape(&net, 2, 0);
  uint64_t puts_after = net.dht(0)->stats().puts;
  ScrapeBody s1 = Parse(body1);

  std::set<std::string> scraped_families;
  for (const auto& [key, value] : s1.series)
    scraped_families.insert(FamilyOf(key));
  std::set<std::string> registered;
  for (const MetricSample& s : net.metrics(0)->Snapshot())
    registered.insert(s.name);
  for (const std::string& fam : registered)
    if (!scraped_families.count(fam))
      Fail("registered family " + fam + " missing from the scrape body");
  for (const char* fam :
       {"pier_dht_puts_total", "pier_repl_repair_ticks_total",
        "pier_query_submitted_total", "pier_net_msgs_sent_total"})
    if (!scraped_families.count(fam))
      Fail(std::string("expected family ") + fam + " absent");

  auto puts_it = s1.series.find("pier_dht_puts_total");
  if (puts_it == s1.series.end()) {
    Fail("pier_dht_puts_total has no series in the scrape");
  } else {
    double v = puts_it->second;
    if (v < static_cast<double>(puts_before) ||
        v > static_cast<double>(puts_after))
      Fail("scraped pier_dht_puts_total=" + bench::Fmt(v, 0) +
           " outside the Dht's own Stats bracket [" +
           std::to_string(puts_before) + ", " + std::to_string(puts_after) +
           "]");
  }

  // More work between the scrapes, then every counter must be monotone.
  for (int i = 0; i < 8; ++i) {
    Tuple t("ev");
    t.Append("k", Value::Int64(1000 + i));
    t.Append("v", Value::Int64(i));
    (void)net.client(0)->Publish("ev", t);
  }
  net.RunFor(2 * kSecond);
  ScrapeBody s2 = Parse(Scrape(&net, 2, 0));
  size_t counters_checked = 0;
  for (const auto& [key, v1] : s1.series) {
    auto type = s1.family_type.find(FamilyOf(key));
    bool monotone = (type != s1.family_type.end() &&
                     (type->second == "counter" || type->second == "histogram"));
    if (!monotone) continue;
    auto it2 = s2.series.find(key);
    if (it2 == s2.series.end()) {
      Fail("series " + key + " vanished between scrapes");
    } else if (it2->second + 1e-9 < v1) {
      Fail("series " + key + " went backwards: " + bench::Fmt(v1, 0) + " -> " +
           bench::Fmt(it2->second, 0));
    }
    counters_checked++;
  }
  bench::Note("scrape: " + std::to_string(registered.size()) +
              " families present, " + std::to_string(counters_checked) +
              " monotone series checked across two scrapes");

  // --- Check 2: sys.metrics round trip -----------------------------------
  std::vector<MetricSample> published;
  Status ps = net.client(0)->PublishMetrics(&published, 60 * kSecond);
  if (!ps.ok()) Fail("PublishMetrics: " + ps.ToString());
  net.RunFor(2 * kSecond);

  auto mq = net.client(2)->Query(Sql("SELECT * FROM sys.metrics TIMEOUT 5s"));
  std::vector<Tuple> rows = bench::Check(mq, "sys.metrics query").Collect();
  // Newest row per (metric, labels, origin): republished snapshots pile up
  // under fresh suffixes until their lifetime expires.
  std::map<std::string, std::pair<int64_t, double>> latest;
  for (const Tuple& t : rows) {
    const Value *m = t.Get("metric"), *l = t.Get("labels"), *o = t.Get("origin"),
                *v = t.Get("value"), *u = t.Get("updated_us");
    if (!m || !l || !o || !v || !u) continue;
    std::string key = std::string(*m->AsString()) + "|" +
                      std::string(*l->AsString()) + "|" +
                      std::string(*o->AsString());
    int64_t at = *u->AsInt64();
    auto it = latest.find(key);
    if (it == latest.end() || at > it->second.first)
      latest[key] = {at, *v->AsDouble()};
  }
  size_t matched = 0;
  for (const MetricSample& s : published) {
    if (s.kind == MetricKind::kHistogram) continue;
    std::string key =
        s.name + "|" + RenderLabels(s.labels) + "|" + "0.0.0.0:0";
    // Origin is node 0's address as the client renders it; recover it from
    // any row instead of guessing the format.
    bool found = false;
    for (const auto& [k, tv] : latest) {
      if (k.rfind(s.name + "|" + RenderLabels(s.labels) + "|", 0) != 0)
        continue;
      found = true;
      if (tv.second != s.value)
        Fail("sys.metrics " + s.name + RenderLabels(s.labels) + " = " +
             bench::Fmt(tv.second, 2) + ", published " +
             bench::Fmt(s.value, 2));
      break;
    }
    (void)key;
    if (!found)
      Fail("published sample " + s.name + RenderLabels(s.labels) +
           " not queryable from sys.metrics");
    else
      matched++;
  }
  if (matched < 10)
    Fail("sys.metrics round trip matched only " + std::to_string(matched) +
         " samples");
  bench::Note("sys.metrics: " + std::to_string(matched) + " of " +
              std::to_string(published.size()) +
              " published samples queried back equal from another node");

  // --- Check 3: explain-analyze vs independently counted wire traffic ----
  for (int i = 0; i < 16; ++i) {
    Tuple t("r");
    t.Append("a", Value::Int64(i));
    t.Append("x", Value::Int64(i));
    (void)net.client(i % kNodes)->Publish("r", t);
  }
  for (int i = 0; i < 8; ++i) {
    Tuple t("s");
    t.Append("b", Value::Int64(100 + i));
    t.Append("y", Value::Int64(i));
    (void)net.client((i + 3) % kNodes)->Publish("s", t);
  }
  net.RunFor(2 * kSecond);

  WireCount before = CountWire(&net);
  auto jq = net.client(4)->Query(
      Sql("SELECT * FROM r r1, s s1 WHERE r1.x = s1.y TIMEOUT 10s"));
  size_t join_matches = bench::Check(jq, "join query").Collect().size();
  if (join_matches != 8)
    Fail("rehash join returned " + std::to_string(join_matches) +
         " matches, expected 8");
  WireCount after = CountWire(&net);

  auto ea = net.client(4)->ExplainAnalyze(*jq);
  if (!ea.ok()) {
    Fail("ExplainAnalyze: " + ea.status().ToString());
  } else {
    if (!ea->final) Fail("cost report not final after completion");
    uint64_t meter_msgs = ea->actual.total.msgs;
    uint64_t independent_msgs = (after.puts - before.puts) +
                                (after.sends - before.sends) +
                                (after.answers_forwarded -
                                 before.answers_forwarded);
    double meter_answer_bytes = 0;
    for (const QueryCostOp& op : ea->actual.ops)
      if (op.graph_id == QueryMeter::kAnswerSlot.first &&
          op.op_id == QueryMeter::kAnswerSlot.second)
        meter_answer_bytes = static_cast<double>(op.cost.bytes);
    double independent_answer_bytes = after.answer_bytes - before.answer_bytes;

    auto within10 = [](double a, double b) {
      double hi = std::max(a, b);
      return hi == 0 || std::abs(a - b) / hi <= 0.10;
    };
    if (!within10(static_cast<double>(meter_msgs),
                  static_cast<double>(independent_msgs)))
      Fail("meter says " + std::to_string(meter_msgs) +
           " wire msgs; DHT+QP ledgers counted " +
           std::to_string(independent_msgs) + " (>10% apart)");
    if (!within10(meter_answer_bytes, independent_answer_bytes))
      Fail("meter says " + bench::Fmt(meter_answer_bytes, 0) +
           " answer bytes on the wire; the answer-bytes histogram saw " +
           bench::Fmt(independent_answer_bytes, 0) + " (>10% apart)");
    bench::Note("explain-analyze: meter " + std::to_string(meter_msgs) +
                " msgs vs independent " + std::to_string(independent_msgs) +
                "; answer bytes " + bench::Fmt(meter_answer_bytes, 0) +
                " vs histogram " + bench::Fmt(independent_answer_bytes, 0));
    std::printf("%s", ea->ToString().c_str());

    if (const char* path = std::getenv("PIER_BENCH_JSON")) {
      std::FILE* f = std::fopen(path, "w");
      if (!f) {
        Fail(std::string("cannot write ") + path);
      } else {
        std::fprintf(f, "{\n  \"bench\": \"metrics_observability\",\n");
        std::fprintf(f, "  \"nodes\": %u, \"rows\": %d,\n", kNodes, kRows);
        std::fprintf(f,
                     "  \"families\": %zu, \"monotone_series\": %zu, "
                     "\"sys_matched\": %zu,\n",
                     registered.size(), counters_checked, matched);
        std::fprintf(f,
                     "  \"join_matches\": %zu, \"meter_msgs\": %llu, "
                     "\"independent_msgs\": %llu, \"answer_bytes\": %.0f\n",
                     join_matches,
                     static_cast<unsigned long long>(meter_msgs),
                     static_cast<unsigned long long>(independent_msgs),
                     meter_answer_bytes);
        std::fprintf(f, "}\n");
        std::fclose(f);
      }
    }
  }

  if (failures == 0)
    bench::Note("self-check passed: scrape, sys.metrics and explain-analyze "
                "all agree with independent counts.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return pier::failures == 0 ? 0 : 1;
}
