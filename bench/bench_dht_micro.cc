// Experiment E4 — Table 2's surface, measured: per-operation latency
// (virtual time) and message cost of the overlay wrapper's four inter-node
// operations on a 32-node seeded network.
//
//   put    lookup + direct store (two-phase, Figure 6)
//   get    lookup + request + response
//   send   hop-by-hop routing (one call, more hops, bigger messages)
//   renew  lookup + lightweight refresh

#include <cstdlib>

#include "bench/bench_common.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 32;
// PIER_BENCH_SMOKE=1 shrinks the op count for CI smoke runs.
const int kOps = std::getenv("PIER_BENCH_SMOKE") != nullptr ? 20 : 100;

struct OpCost {
  double latency_ms = 0;
  double msgs = 0;
  double bytes = 0;
};

void Report(const char* name, const OpCost& c) {
  std::vector<int> w = {10, 14, 12, 12};
  bench::Row({name, bench::Fmt(c.latency_ms), bench::Fmt(c.msgs),
              bench::Fmt(c.bytes, 0)},
             w);
}

void Run() {
  bench::Title("E4: overlay wrapper operation costs (Table 2 surface)");
  bench::Note("N=" + std::to_string(kNodes) + ", " + std::to_string(kOps) +
              " ops each, seeded routing, idle-baseline subtracted");

  SimOverlay::Options opts;
  opts.sim.seed = 21;
  opts.seed_routing = true;
  opts.settle_time = 2 * kSecond;
  SimOverlay net(kNodes, opts);
  Rng rng(5);

  // Preload objects for get/renew.
  for (int i = 0; i < kOps; ++i) {
    net.dht(i % kNodes)->Put("mb", "key" + std::to_string(i), "s", "value",
                             10LL * 60 * kSecond);
  }
  net.RunFor(5 * kSecond);

  // The op window lasts kOps*200ms + 3s; measure the maintenance baseline
  // over an identical adjacent window so the periodic bursts cancel.
  const TimeUs kWindow = kOps * 200 * kMillisecond + 3 * kSecond;
  auto idle_window = [&]() {
    net.harness()->ResetStats();
    net.RunFor(kWindow);
    return std::pair<uint64_t, uint64_t>(net.harness()->total_msgs(),
                                         net.harness()->total_bytes());
  };

  auto measure = [&](auto issue) {
    auto [idle_msgs, idle_bytes] = idle_window();
    net.harness()->ResetStats();
    TimeUs total_latency = 0;
    int done = 0;
    for (int i = 0; i < kOps; ++i) {
      issue(i, [&, start = net.loop()->now()]() {
        total_latency += net.loop()->now() - start;
        done++;
      });
      net.RunFor(200 * kMillisecond);
    }
    net.RunFor(3 * kSecond);
    OpCost c;
    c.latency_ms = done ? static_cast<double>(total_latency) / done / kMillisecond
                        : -1;
    c.msgs = (static_cast<double>(net.harness()->total_msgs()) - idle_msgs) /
             kOps;
    c.bytes = (static_cast<double>(net.harness()->total_bytes()) - idle_bytes) /
              kOps;
    return c;
  };

  std::vector<int> w = {10, 14, 12, 12};
  bench::Row({"op", "latency ms", "msgs/op", "bytes/op"}, w);

  OpCost put = measure([&](int i, auto done) {
    net.dht(rng.Uniform(kNodes))
        ->Put("mb2", "put" + std::to_string(i), "s", "value",
              10LL * 60 * kSecond, [done](const Status&) { done(); });
  });
  Report("put", put);

  OpCost get = measure([&](int i, auto done) {
    net.dht(rng.Uniform(kNodes))
        ->Get("mb", "key" + std::to_string(i),
              [done](const Status&, std::vector<DhtItem>) { done(); });
  });
  Report("get", get);

  // Send has no completion callback (one-way); measure arrival via newData
  // at every node.
  {
    auto arrivals = std::make_shared<std::vector<TimeUs>>();
    std::vector<uint64_t> subs;
    for (uint32_t i = 0; i < kNodes; ++i) {
      subs.push_back(net.dht(i)->OnNewData(
          "mb3", [arrivals, &net](const ObjectName&, std::string_view) {
            arrivals->push_back(net.loop()->now());
          }));
    }
    const TimeUs kSendWindow = kOps * 500 * kMillisecond;
    net.harness()->ResetStats();
    net.RunFor(kSendWindow);
    uint64_t idle_msgs = net.harness()->total_msgs();
    uint64_t idle_bytes = net.harness()->total_bytes();
    net.harness()->ResetStats();
    TimeUs total_latency = 0;
    for (int i = 0; i < kOps; ++i) {
      TimeUs start = net.loop()->now();
      arrivals->clear();
      net.dht(rng.Uniform(kNodes))
          ->Send("mb3", "send" + std::to_string(i), "s", "value",
                 10LL * 60 * kSecond);
      net.RunFor(500 * kMillisecond);
      if (!arrivals->empty()) total_latency += arrivals->front() - start;
    }
    OpCost c;
    c.latency_ms = static_cast<double>(total_latency) / kOps / kMillisecond;
    c.msgs = (static_cast<double>(net.harness()->total_msgs()) - idle_msgs) /
             kOps;
    c.bytes = (static_cast<double>(net.harness()->total_bytes()) - idle_bytes) /
              kOps;
    Report("send", c);
    for (uint32_t i = 0; i < kNodes; ++i) net.dht(i)->CancelNewData(subs[i]);
  }

  OpCost renew = measure([&](int i, auto done) {
    net.dht(rng.Uniform(kNodes))
        ->Renew("mb", "key" + std::to_string(i), "s", 10LL * 60 * kSecond,
                [done](const Status&) { done(); });
  });
  Report("renew", renew);

  // Batched put, reported per ITEM so the row compares against "put"
  // directly: one PutBatch of kBatch objects counts as kBatch ops.
  {
    constexpr int kBatch = 8;
    uint64_t batched_before = 0, batch_msgs_before = 0;
    for (uint32_t i = 0; i < kNodes; ++i) {
      Dht::Stats s = net.dht(i)->stats();
      batched_before += s.batched_puts;
      batch_msgs_before += s.batch_msgs;
    }
    OpCost batch = measure([&](int i, auto done) {
      std::vector<DhtPutItem> items;
      items.reserve(kBatch);
      for (int j = 0; j < kBatch; ++j) {
        DhtPutItem item;
        item.ns = "mb4";
        item.key = "bk" + std::to_string(i * kBatch + j);
        item.suffix = "s";
        item.value = "value";
        item.lifetime = 10LL * 60 * kSecond;
        items.push_back(std::move(item));
      }
      net.dht(rng.Uniform(kNodes))
          ->PutBatch(std::move(items), [done](const Status&) { done(); });
    });
    batch.msgs /= kBatch;
    batch.bytes /= kBatch;
    Report("put(b=8)", batch);
    uint64_t batched = 0, batch_msgs = 0;
    for (uint32_t i = 0; i < kNodes; ++i) {
      Dht::Stats s = net.dht(i)->stats();
      batched += s.batched_puts;
      batch_msgs += s.batch_msgs;
    }
    bench::Note("dht stats: " + std::to_string(batched - batched_before) +
                " objects rode " + std::to_string(batch_msgs - batch_msgs_before) +
                " multi-object frames (rest were singleton-owner puts)");
  }

  bench::Note(
      "expected shape: put ≈ get ≈ renew (lookup-dominated, two-phase); "
      "send completes in one routed pass (lower latency, fewer round "
      "trips); put(b=8) amortizes headers/acks across the batch, so its "
      "per-item msgs and bytes land below put's.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
