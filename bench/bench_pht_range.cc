// Experiment E11 — §3.3.3 range predicates: Prefix Hash Tree range queries
// vs the broadcast alternative.
//
// 2000 integer keys are inserted into a PHT over a 2^20 key space. For each
// range width we issue range queries and report result counts, messages and
// virtual latency. The broadcast comparison point is the true-predicate
// index: reaching all N nodes costs ~N messages before any node even scans,
// while the PHT touches only the trie nodes overlapping the range.

#include "bench/bench_common.h"
#include "overlay/pht.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 64;
constexpr int kKeys = 800;
constexpr uint64_t kSpace = 1ULL << 20;

void Run() {
  bench::Title("E11: PHT range queries vs broadcast scan");
  SimOverlay::Options opts;
  opts.sim.seed = 77;
  opts.seed_routing = true;
  opts.settle_time = 2 * kSecond;
  SimOverlay net(kNodes, opts);

  Pht::Options popts;
  popts.table = "ridx";
  popts.key_bits = 20;
  popts.bucket_size = 16;
  // The whole experiment spans ~6 virtual minutes; out-live it rather than
  // renewing (a real deployment would renew, §3.2.3 — the default 5-minute
  // lifetime otherwise garbage-collects the trie mid-measurement).
  popts.lifetime = 30LL * 60 * kSecond;
  Pht pht(net.dht(0), popts);

  // Inserts are paced: the PHT's split protocol is resilient to the races a
  // handful of concurrent inserts cause, but an unthrottled burst of
  // thousands (all against the same initial leaf) thrashes the trie — the
  // PHT paper [59] leaves high-concurrency splitting to future work, and so
  // do we (DESIGN.md §6).
  Rng rng(13);
  int inserted = 0;
  for (int i = 0; i < kKeys; ++i) {
    pht.Insert(rng.Uniform(kSpace), "v" + std::to_string(i),
               [&](const Status& s) { inserted += s.ok(); });
    if (i % 4 == 3) net.RunFor(1 * kSecond);  // let splits settle
  }
  net.RunFor(20 * kSecond);
  bench::Note("inserted " + std::to_string(inserted) + "/" +
              std::to_string(kKeys) + " keys into key space 2^20, bucket=16");

  Pht reader(net.dht(5), popts);
  std::vector<int> w = {14, 10, 12, 14, 16};
  bench::Row({"range width", "results", "msgs", "latency ms",
              "broadcast msgs>="},
             w);
  for (uint64_t width : {256ULL, 4096ULL, 65536ULL, 262144ULL}) {
    uint64_t lo = rng.Uniform(kSpace - width);
    // Idle baseline over an identical window (maintenance traffic), then
    // the query window; the difference is the query's own message cost.
    net.harness()->ResetStats();
    net.RunFor(15 * kSecond);
    uint64_t idle = net.harness()->total_msgs();
    net.harness()->ResetStats();
    TimeUs start = net.loop()->now();
    size_t results = 0;
    TimeUs lat = -1;
    reader.RangeQuery(lo, lo + width - 1,
                      [&](const Status& s, std::vector<PhtItem> items) {
                        if (s.ok()) results = items.size();
                        lat = net.loop()->now() - start;
                      });
    net.RunFor(15 * kSecond);
    uint64_t msgs = net.harness()->total_msgs();
    bench::Row({std::to_string(width), std::to_string(results),
                std::to_string(msgs > idle ? msgs - idle : 0), bench::Ms(lat),
                std::to_string(kNodes)},
               w);
  }
  bench::Note(
      "expected shape: narrow ranges touch a handful of trie leaves (message "
      "cost << N); cost grows with range width and approaches the broadcast "
      "cost only for ranges covering much of the key space.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
