// Experiment E3 — Table 1's substrate, measured: microbenchmarks of the
// runtime primitives every PIER operation is built from (Main Scheduler
// event dispatch, timer cancellation, simulated UDP delivery, wire codec,
// tuple codec), plus the headline batch-dataflow comparison: the same
// selection+projection pipeline driven tuple-at-a-time (Consume) vs
// batch-at-a-time (ProcessBatch).
//
// Self-contained harness (no external benchmark dependency). Self-checking:
// both dataflow paths must produce identical row counts and checksums, and
// the batch path must sustain >= 2x the per-tuple path's single-thread
// throughput; either violation exits nonzero. PIER_BENCH_JSON=<path> writes
// the deterministic fields (counts, checksums, pass booleans — never
// timings) for the CI golden diff.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/tuple.h"
#include "data/tuple_batch.h"
#include "qp/dataflow.h"
#include "qp/expr.h"
#include "runtime/event_loop.h"
#include "runtime/sim_runtime.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/wire.h"

namespace pier {
namespace {

// --- Tiny timing harness -----------------------------------------------------

volatile uint64_t g_sink = 0;  // defeats dead-code elimination

double NowSec() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

/// Runs `fn` (which performs `ops_per_call` operations) repeatedly for at
/// least `min_sec` wall seconds and returns nanoseconds per operation.
template <typename Fn>
double NsPerOp(uint64_t ops_per_call, Fn&& fn, double min_sec = 0.2) {
  fn();  // warm-up
  uint64_t calls = 0;
  double start = NowSec(), elapsed = 0;
  do {
    fn();
    calls++;
    elapsed = NowSec() - start;
  } while (elapsed < min_sec);
  return elapsed * 1e9 / (static_cast<double>(calls) * ops_per_call);
}

void MicroRow(const std::string& name, double ns) {
  bench::Row({name, bench::Fmt(ns, 1) + " ns/op"}, {34, 16});
}

// --- Runtime primitive micros (the seed's E3 rows) ---------------------------

double BenchEventLoopScheduleRun() {
  EventLoop loop;
  return NsPerOp(1024, [&loop]() {
    for (int i = 0; i < 1024; ++i) {
      loop.ScheduleAfter(1, []() { g_sink++; });
      loop.RunOne();
    }
  });
}

double BenchEventLoopCancel() {
  EventLoop loop;
  double ns = NsPerOp(1024, [&loop]() {
    for (int i = 0; i < 1024; ++i) {
      uint64_t token = loop.ScheduleAfter(1000000, []() {});
      loop.Cancel(token);
    }
  });
  loop.RunUntilIdle();  // drain tombstones
  return ns;
}

double BenchSimUdpRoundtrip() {
  // One datagram delivered between two virtual nodes through the topology
  // and congestion models, per op.
  SimOptions opts;
  opts.seed = 3;
  SimHarness sim(opts);
  sim.AddNodes(2);
  struct Sink : UdpHandler {
    void HandleUdp(const NetAddress&, std::string_view) override { g_sink++; }
  };
  Sink sink;
  PIER_CHECK(sim.vri(1)->UdpListen(9, &sink).ok());
  PIER_CHECK(sim.vri(0)->UdpListen(9, &sink).ok());
  NetAddress dst = sim.AddressOf(1, 9);
  return NsPerOp(256, [&sim, &dst]() {
    for (int i = 0; i < 256; ++i) {
      PIER_CHECK(sim.vri(0)
                     ->UdpSend(9, dst, "payload-of-a-plausible-size-1234567890")
                     .ok());
      sim.loop()->RunUntilIdle();
    }
  });
}

double BenchWireCodec() {
  return NsPerOp(1024, []() {
    for (int i = 0; i < 1024; ++i) {
      WireWriter w;
      w.PutU64(0x12345678);
      w.PutVarint(123456);
      w.PutBytes("hello wire format");
      w.PutDouble(3.14159);
      std::string buf = std::move(w).data();
      WireReader r(buf);
      uint64_t a, b;
      std::string_view s;
      double d = 0;
      PIER_CHECK(r.GetU64(&a).ok() && r.GetVarint(&b).ok() &&
                 r.GetBytes(&s).ok() && r.GetDouble(&d).ok());
      g_sink += static_cast<uint64_t>(d);
    }
  });
}

double BenchTupleCodec() {
  Tuple t("fw");
  t.Append("src", Value::String("10.1.2.3"));
  t.Append("dst_port", Value::Int64(445));
  t.Append("proto", Value::String("tcp"));
  t.Append("ts", Value::Int64(1234567));
  return NsPerOp(1024, [&t]() {
    for (int i = 0; i < 1024; ++i) {
      std::string wire = t.Encode();
      Result<Tuple> back = Tuple::Decode(wire);
      g_sink += back.ok() ? 1 : 0;
    }
  });
}

double BenchRoutingIdHash() {
  uint64_t i = 0;
  return NsPerOp(1024, [&i]() {
    for (int k = 0; k < 1024; ++k) {
      g_sink += HashNamespaceKey("some_table", "key" + std::to_string(i++));
    }
  });
}

// --- Batch vs per-tuple dataflow ---------------------------------------------

constexpr size_t kRows = 65536;
constexpr size_t kBatchRows = 1024;

/// Terminal sink: counts rows and chains their content hashes in arrival
/// order. RowHash matches Tuple::Hash, so the two paths must agree exactly.
class CollectorOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(int, uint32_t, Tuple t) override {
    count_++;
    checksum_ = checksum_ * 1099511628211ull ^ t.Hash();
  }
  void ProcessBatch(int, uint32_t, const TupleBatch& batch) override {
    const size_t n = batch.num_rows();
    count_ += n;
    for (size_t r = 0; r < n; ++r)
      checksum_ = checksum_ * 1099511628211ull ^ batch.RowHash(r);
  }
  void Reset() { count_ = 0, checksum_ = 0; }
  uint64_t count() const { return count_; }
  uint64_t checksum() const { return checksum_; }

 private:
  uint64_t count_ = 0;
  uint64_t checksum_ = 0;
};

std::vector<Tuple> MakeRows() {
  std::vector<Tuple> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    Tuple t("flows");
    t.Append("a", Value::Int64(static_cast<int64_t>(i)));
    t.Append("b", Value::Int64(static_cast<int64_t>(i * 2654435761ull % 997)));
    t.Append("src", Value::String("10.0." + std::to_string(i % 256) + "." +
                                  std::to_string(i % 97)));
    rows.push_back(std::move(t));
  }
  return rows;
}

struct PipelineResult {
  uint64_t count = 0;
  uint64_t checksum = 0;
  double ns_per_row = 0;
};

/// Builds selection[b < 499] -> projection[a, src; twice = a * 2] ->
/// collector, then drives `rows` through it via the requested path.
PipelineResult RunPipeline(const std::vector<Tuple>& rows,
                           const std::vector<TupleBatch>& batches,
                           bool batch_path) {
  Result<ExprPtr> pred = ParseExpr("b < 499");
  Result<ExprPtr> twice = ParseExpr("a * 2");
  PIER_CHECK(pred.ok() && twice.ok());
  OpSpec sel_spec(1, OpKind::kSelection);
  sel_spec.SetExpr("pred", *pred);
  OpSpec proj_spec(2, OpKind::kProjection);
  proj_spec.SetStrings("cols", {"a", "src"});
  proj_spec.Set("out0", "twice");
  proj_spec.SetExpr("expr0", *twice);

  Result<std::unique_ptr<Operator>> sel_r = MakeOperator(sel_spec);
  Result<std::unique_ptr<Operator>> proj_r = MakeOperator(proj_spec);
  PIER_CHECK(sel_r.ok() && proj_r.ok());
  std::unique_ptr<Operator> sel = std::move(*sel_r);
  std::unique_ptr<Operator> proj = std::move(*proj_r);
  CollectorOp collector(OpSpec(3, OpKind::kResult));

  ExecContext cx;
  PIER_CHECK(sel->Init(&cx).ok());
  PIER_CHECK(proj->Init(&cx).ok());
  PIER_CHECK(collector.Init(&cx).ok());
  sel->AddOutput(proj.get(), 0);
  proj->AddOutput(&collector, 0);

  Operator* head = sel.get();
  PipelineResult out;
  out.ns_per_row = NsPerOp(kRows, [&]() {
    collector.Reset();
    if (batch_path) {
      for (const TupleBatch& b : batches) head->ProcessBatch(0, 0, b);
    } else {
      for (const Tuple& t : rows) head->Consume(0, 0, t);
    }
  });
  out.count = collector.count();
  out.checksum = collector.checksum();
  return out;
}

int Run() {
  bench::Title("E3: runtime micro-benchmarks");
  bench::Note("primitive costs (wall-clock; not part of the golden):");
  MicroRow("event loop schedule+run", BenchEventLoopScheduleRun());
  MicroRow("event loop cancel", BenchEventLoopCancel());
  MicroRow("sim UDP roundtrip", BenchSimUdpRoundtrip());
  MicroRow("wire codec roundtrip", BenchWireCodec());
  MicroRow("tuple codec roundtrip", BenchTupleCodec());
  MicroRow("routing id hash", BenchRoutingIdHash());

  bench::Title("batch vs per-tuple dataflow");
  bench::Note("selection+projection pipeline over " + std::to_string(kRows) +
              " rows; batch rows = " + std::to_string(kBatchRows));

  std::vector<Tuple> rows = MakeRows();
  std::vector<TupleBatch> batches;
  for (size_t off = 0; off < rows.size(); off += kBatchRows) {
    size_t n = std::min(kBatchRows, rows.size() - off);
    batches.push_back(TupleBatch::FromTuples(std::vector<Tuple>(
        rows.begin() + static_cast<long>(off),
        rows.begin() + static_cast<long>(off + n))));
  }

  PipelineResult scalar = RunPipeline(rows, batches, /*batch_path=*/false);
  PipelineResult batch = RunPipeline(rows, batches, /*batch_path=*/true);
  double speedup = scalar.ns_per_row / batch.ns_per_row;

  std::vector<int> w = {14, 12, 18, 10, 10};
  bench::Row({"path", "rows out", "checksum", "ns/row", "Mrow/s"}, w);
  for (const auto* p : {&scalar, &batch}) {
    char sum[20];
    std::snprintf(sum, sizeof sum, "%016" PRIx64, p->checksum);
    bench::Row({p == &scalar ? "per-tuple" : "batch",
                std::to_string(p->count), sum, bench::Fmt(p->ns_per_row, 1),
                bench::Fmt(1e3 / p->ns_per_row, 1)},
               w);
  }
  bench::Note("batch speedup: " + bench::Fmt(speedup, 2) + "x");

  int failures = 0;
  if (scalar.count != batch.count || scalar.checksum != batch.checksum) {
    std::fprintf(stderr,
                 "FAIL: batch and per-tuple paths disagree (%llu/%016" PRIx64
                 " vs %llu/%016" PRIx64 ")\n",
                 static_cast<unsigned long long>(scalar.count), scalar.checksum,
                 static_cast<unsigned long long>(batch.count), batch.checksum);
    failures++;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: batch path speedup %.2fx < 2x over the per-tuple path "
                 "(%.1f vs %.1f ns/row)\n",
                 speedup, batch.ns_per_row, scalar.ns_per_row);
    failures++;
  }
  if (failures == 0)
    bench::Note("ok: identical answers, batch path >= 2x per-tuple path");

  if (const char* path = std::getenv("PIER_BENCH_JSON")) {
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", path);
      return failures + 1;
    }
    // Deterministic fields only: counts and checksums are fixed by the input
    // generator; timings never appear here.
    std::fprintf(f, "{\n  \"bench\": \"runtime_micro\",\n");
    std::fprintf(f, "  \"rows\": %zu, \"batch_rows\": %zu,\n", kRows,
                 kBatchRows);
    std::fprintf(f,
                 "  \"pipeline_rows_out\": %llu,\n"
                 "  \"pipeline_checksum\": \"%016" PRIx64 "\",\n",
                 static_cast<unsigned long long>(scalar.count),
                 scalar.checksum);
    std::fprintf(f, "  \"paths_identical\": %s,\n",
                 scalar.count == batch.count &&
                         scalar.checksum == batch.checksum
                     ? "true"
                     : "false");
    std::fprintf(f, "  \"batch_speedup_ge_2x\": %s\n}\n",
                 speedup >= 2.0 ? "true" : "false");
    std::fclose(f);
  }
  return failures;
}

}  // namespace
}  // namespace pier

int main() {
  int failures = pier::Run();
  if (pier::g_sink == ~0ull) std::printf("(unreachable)\n");
  return failures;
}
