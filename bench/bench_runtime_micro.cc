// Experiment E3 — Table 1's substrate, measured: microbenchmarks of the
// runtime primitives every PIER operation is built from (Main Scheduler
// event dispatch, timer cancellation, simulated UDP delivery, wire codec,
// tuple codec). google-benchmark harness.

#include <benchmark/benchmark.h>

#include "data/tuple.h"
#include "runtime/event_loop.h"
#include "runtime/sim_runtime.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/wire.h"

namespace pier {
namespace {

void BM_EventLoopScheduleRun(benchmark::State& state) {
  EventLoop loop;
  uint64_t sink = 0;
  for (auto _ : state) {
    loop.ScheduleAfter(1, [&sink]() { sink++; });
    loop.RunOne();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_EventLoopCancel(benchmark::State& state) {
  EventLoop loop;
  for (auto _ : state) {
    uint64_t token = loop.ScheduleAfter(1000000, []() {});
    loop.Cancel(token);
  }
  // Drain tombstones.
  loop.RunUntilIdle();
}
BENCHMARK(BM_EventLoopCancel);

void BM_SimUdpRoundtrip(benchmark::State& state) {
  /// One datagram delivered between two virtual nodes through the topology
  /// and congestion models, per iteration.
  SimOptions opts;
  opts.seed = 3;
  SimHarness sim(opts);
  sim.AddNodes(2);
  struct Sink : UdpHandler {
    uint64_t received = 0;
    void HandleUdp(const NetAddress&, std::string_view) override { received++; }
  };
  Sink sink;
  PIER_CHECK(sim.vri(1)->UdpListen(9, &sink).ok());
  PIER_CHECK(sim.vri(0)->UdpListen(9, &sink).ok());
  NetAddress dst = sim.AddressOf(1, 9);
  for (auto _ : state) {
    PIER_CHECK(
        sim.vri(0)->UdpSend(9, dst, "payload-of-a-plausible-size-1234567890").ok());
    sim.loop()->RunUntilIdle();
  }
  benchmark::DoNotOptimize(sink.received);
}
BENCHMARK(BM_SimUdpRoundtrip);

void BM_WireCodec(benchmark::State& state) {
  for (auto _ : state) {
    WireWriter w;
    w.PutU64(0x12345678);
    w.PutVarint(123456);
    w.PutBytes("hello wire format");
    w.PutDouble(3.14159);
    std::string buf = std::move(w).data();
    WireReader r(buf);
    uint64_t a, b;
    std::string_view s;
    double d;
    r.GetU64(&a).ok();
    r.GetVarint(&b).ok();
    r.GetBytes(&s).ok();
    r.GetDouble(&d).ok();
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_WireCodec);

void BM_TupleCodec(benchmark::State& state) {
  Tuple t("fw");
  t.Append("src", Value::String("10.1.2.3"));
  t.Append("dst_port", Value::Int64(445));
  t.Append("proto", Value::String("tcp"));
  t.Append("ts", Value::Int64(1234567));
  for (auto _ : state) {
    std::string wire = t.Encode();
    Result<Tuple> back = Tuple::Decode(wire);
    benchmark::DoNotOptimize(back.ok());
  }
}
BENCHMARK(BM_TupleCodec);

void BM_RoutingIdHash(benchmark::State& state) {
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HashNamespaceKey("some_table", "key" + std::to_string(i++)));
  }
}
BENCHMARK(BM_RoutingIdHash);

}  // namespace
}  // namespace pier

BENCHMARK_MAIN();
