// Experiment E10 — §3.3.3 query dissemination: distribution-tree shape and
// broadcast cost.
//
// The tree is built by routing JOIN messages toward a well-known root; its
// shape is inherited from the DHT's routing algorithm (footnote 6: Chord
// yields roughly binomial trees). For each protocol and N we report reach
// (nodes covered), time to full coverage, message count, and the fanout
// distribution (root fanout, max fanout, interior-node share).

#include <algorithm>

#include "bench/bench_common.h"
#include "overlay/distribution_tree.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

void Measure(uint32_t n, ProtocolKind kind, const char* name) {
  SimOverlay::Options opts;
  opts.sim.seed = 13;
  opts.dht.router.protocol = kind;
  opts.seed_routing = true;
  opts.settle_time = 1 * kSecond;
  SimOverlay net(n, opts);

  std::vector<std::unique_ptr<DistributionTree>> trees;
  std::vector<TimeUs> arrival(n, -1);
  for (uint32_t i = 0; i < n; ++i) {
    auto tree = std::make_unique<DistributionTree>(net.dht(i));
    tree->set_broadcast_handler([&, i](std::string_view) {
      if (arrival[i] < 0) arrival[i] = net.loop()->now();
    });
    trees.push_back(std::move(tree));
  }
  net.RunFor(10 * kSecond);  // tree formation (periodic joins)

  net.harness()->ResetStats();
  TimeUs start = net.loop()->now();
  trees[0]->Broadcast("opgraph");
  net.RunFor(15 * kSecond);

  uint32_t reached = 0;
  TimeUs last = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (arrival[i] >= 0) {
      reached++;
      last = std::max(last, arrival[i] - start);
    }
  }
  size_t interior = 0, max_fanout = 0;
  for (auto& t : trees) {
    interior += t->num_children() > 0;
    max_fanout = std::max(max_fanout, t->num_children());
  }

  std::vector<int> w = {8, 8, 10, 14, 14, 10, 12};
  bench::Row({name, std::to_string(n),
              std::to_string(reached) + "/" + std::to_string(n),
              bench::Ms(last) + "ms", std::to_string(net.harness()->total_msgs()),
              std::to_string(max_fanout),
              bench::Fmt(100.0 * interior / n, 0) + "%"},
             w);
}

void Run() {
  bench::Title("E10: distribution trees — reach, latency, shape per protocol");
  std::vector<int> w = {8, 8, 10, 14, 14, 10, 12};
  bench::Row({"proto", "N", "reach", "cover time", "bcast msgs", "max fan",
              "interior%"},
             w);
  for (uint32_t n : {64u, 256u, 512u}) {
    Measure(n, ProtocolKind::kChord, "chord");
    Measure(n, ProtocolKind::kPrefix, "prefix");
  }
  bench::Note(
      "expected shape: full reach; cover time grows slowly with N (tree "
      "depth); Chord trees are taller/narrower (binomial-ish), prefix trees "
      "bushier (higher max fanout, fewer interior nodes).");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
