// Experiment E6 — §3.3.4 hierarchical aggregation: distributing the
// collection point's in-bandwidth.
//
// Three physical strategies for the same GROUP BY COUNT query over in-situ
// logs, swept over network size:
//
//   central  every node ships raw partials to ONE collection key
//   flat     two-phase: local partials rehashed by group key (many owners)
//   hier     partials combined in-network on the aggregation tree
//
// Reported: messages and max per-node inbound messages attributable to the
// query (idle-baseline subtracted), plus answer completeness. The paper's
// claim: hierarchical computation bounds the in-bandwidth at the root
// ("in the optimal case, each node sends exactly one partial aggregate").

#include <algorithm>

#include "apps/netmon.h"
#include "apps/workloads.h"
#include "bench/bench_common.h"

namespace pier {
namespace {

struct Cost {
  uint64_t total_msgs = 0;
  uint64_t max_in_msgs = 0;
  size_t groups = 0;
};

/// Measure a strategy on a fresh network of `n` nodes.
Cost Measure(uint32_t n, const std::string& strategy, uint64_t seed) {
  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.settle_time = 8 * kSecond;
  SimPier net(n, popts);

  FirewallOptions fopts;
  fopts.num_sources = 100;
  fopts.events_per_node = 25;
  fopts.seed = seed + 1;
  FirewallWorkload wl(fopts);
  NetmonApp app(&net);
  app.LoadLogs(wl);
  net.RunFor(1 * kSecond);

  const TimeUs kQueryTime = 16 * kSecond;

  // Idle baseline over the same horizon (DHT + tree maintenance).
  net.harness()->ResetStats();
  net.RunFor(kQueryTime + 2 * kSecond);
  uint64_t base_total = net.harness()->total_msgs();
  std::vector<uint64_t> base_in(n);
  for (uint32_t i = 0; i < n; ++i)
    base_in[i] = net.harness()->node_stats(i).msgs_recv;

  net.harness()->ResetStats();
  std::map<std::string, int64_t> got;
  auto on_tuple = [&](const Tuple& t) {
    const Value* s = t.Get("src");
    const Value* c = t.Get("cnt");
    if (s && c && c->type() == ValueType::kInt64)
      got[std::string(*s->AsString())] = c->int64_unchecked();
  };

  if (strategy == "central") {
    // scan -> put(const key)  +  newdata -> groupby(local) -> result.
    QueryPlan plan;
    plan.query_id = 0xC0FFEE ^ seed ^ n;
    plan.timeout = kQueryTime;
    std::string ns = "q" + std::to_string(plan.query_id) + ".central";
    OpGraph& g1 = plan.AddGraph();
    OpSpec& scan = g1.AddOp(OpKind::kScan);
    scan.Set("ns", "fw");
    uint32_t scan_id = scan.id;
    OpSpec& put = g1.AddOp(OpKind::kPut);
    put.Set("ns", ns);
    put.Set("key", "");
    g1.Connect(scan_id, put.id, 0);

    OpGraph& g2 = plan.AddGraph();
    g2.dissem = DissemKind::kEquality;
    g2.dissem_ns = ns;
    g2.dissem_key = Tuple().PartitionKey({});
    g2.flush_stage = 1;
    OpSpec& nd = g2.AddOp(OpKind::kNewData);
    nd.Set("ns", ns);
    uint32_t nd_id = nd.id;
    OpSpec& agg = g2.AddOp(OpKind::kGroupBy);
    agg.Set("keys", "src");
    agg.Set("aggs", "count::cnt");
    uint32_t agg_id = agg.id;
    g2.Connect(nd_id, agg_id, 0);
    OpSpec& res = g2.AddOp(OpKind::kResult);
    g2.Connect(agg_id, res.id, 0);

    auto q = net.client(0)->Query(std::move(plan));
    bench::Check(q, "central query").OnTuple(on_tuple);
  } else {
    auto q = net.client(0)->Query(
        Sql("SELECT src, count(*) AS cnt FROM fw GROUP BY src TIMEOUT " +
            std::to_string(kQueryTime / kMillisecond) + "ms")
            .WithAggStrategy(strategy));
    bench::Check(q, "aggregation query").OnTuple(on_tuple);
  }
  net.RunFor(kQueryTime + 2 * kSecond);

  Cost cost;
  uint64_t total = net.harness()->total_msgs();
  cost.total_msgs = total > base_total ? total - base_total : 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t in = net.harness()->node_stats(i).msgs_recv;
    uint64_t delta = in > base_in[i] ? in - base_in[i] : 0;
    cost.max_in_msgs = std::max(cost.max_in_msgs, delta);
  }
  cost.groups = got.size();
  return cost;
}

void Run() {
  bench::Title("E6: aggregation strategies — in-bandwidth at the collector");
  std::vector<int> w = {6, 10, 14, 12, 10};
  bench::Row({"N", "strategy", "query msgs", "max in-msgs", "groups"}, w);
  for (uint32_t n : {32u, 64u, 128u}) {
    for (const char* strategy : {"central", "flat", "hier"}) {
      Cost c = Measure(n, strategy, 71);
      bench::Row({std::to_string(n), strategy, std::to_string(c.total_msgs),
                  std::to_string(c.max_in_msgs), std::to_string(c.groups)},
                 w);
    }
  }
  bench::Note(
      "expected shape: 'central' concentrates ~N partial batches on one "
      "node (max in-msgs grows with N); 'flat' spreads group partitions; "
      "'hier' combines partials in-network so the root's in-bandwidth stays "
      "nearly flat as N grows.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
