// Experiment E9 — §3.2.3 soft state: the availability / publisher-cost
// trade-off of the renewal period.
//
// A publisher keeps 100 objects alive (lifetime L = 20s) while nodes fail
// underneath them. Shorter renewal periods detect a lost object sooner (the
// renew fails, the publisher re-puts) at the cost of more renewal traffic.
// We sweep the renewal period and report availability (fraction of sampled
// gets that find the object) and publisher operations.

#include "bench/bench_common.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 48;
constexpr int kObjects = 100;
constexpr TimeUs kLifetime = 20 * kSecond;
constexpr TimeUs kRunTime = 180 * kSecond;
constexpr TimeUs kFailEvery = 30 * kSecond;  // one random node dies

struct Outcome {
  double availability = 0;
  uint64_t publisher_ops = 0;  // renews + re-puts
};

Outcome Measure(TimeUs renew_period, uint64_t seed) {
  SimOverlay::Options opts;
  opts.sim.seed = seed;
  opts.seed_routing = true;
  opts.settle_time = 2 * kSecond;
  SimOverlay net(kNodes, opts);

  // Publish the working set from node 0 (node 0 never fails).
  auto key = [](int i) { return "obj" + std::to_string(i); };
  for (int i = 0; i < kObjects; ++i) {
    net.dht(0)->Put("ss", key(i), "s", "payload", kLifetime);
  }
  net.RunFor(2 * kSecond);

  uint64_t publisher_ops = kObjects;
  uint64_t probes = 0, hits = 0;
  Rng rng(seed + 5);

  // The publisher's renewal loop, the failure process, and the sampler all
  // advance together in 1s steps of virtual time.
  TimeUs next_renew = renew_period > 0 ? renew_period : kRunTime + kSecond;
  TimeUs next_fail = kFailEvery;
  for (TimeUs t = 0; t < kRunTime; t += kSecond) {
    if (renew_period > 0 && t >= next_renew) {
      next_renew += renew_period;
      for (int i = 0; i < kObjects; ++i) {
        publisher_ops++;
        net.dht(0)->Renew("ss", key(i), "s", kLifetime, [&, i](const Status& s) {
          if (!s.ok()) {
            // Lost (owner died or expired): publish again.
            publisher_ops++;
            net.dht(0)->Put("ss", key(i), "s", "payload", kLifetime);
          }
        });
      }
    }
    if (t >= next_fail) {
      next_fail += kFailEvery;
      uint32_t victim = 1 + static_cast<uint32_t>(rng.Uniform(kNodes - 1));
      if (net.harness()->IsAlive(victim)) {
        net.harness()->FailNode(victim);
        net.SeedAll();  // repair routing; churn handling is E14's subject
      }
    }
    // Sample availability: 5 random objects per second from a live node.
    for (int s = 0; s < 5; ++s) {
      int i = static_cast<int>(rng.Uniform(kObjects));
      probes++;
      net.dht(0)->Get("ss", key(i), [&](const Status& st, std::vector<DhtItem> items) {
        if (st.ok() && !items.empty()) hits++;
      });
    }
    net.RunFor(kSecond);
  }
  net.RunFor(5 * kSecond);  // drain in-flight gets

  Outcome out;
  out.availability = probes ? static_cast<double>(hits) / probes : 0;
  out.publisher_ops = publisher_ops;
  return out;
}

void Run() {
  bench::Title("E9: soft state — renewal period vs availability and cost");
  bench::Note("objects=" + std::to_string(kObjects) + " lifetime=" +
              std::to_string(kLifetime / kSecond) + "s run=" +
              std::to_string(kRunTime / kSecond) + "s, node failure every " +
              std::to_string(kFailEvery / kSecond) + "s");
  std::vector<int> w = {18, 16, 16};
  bench::Row({"renew period", "availability%", "publisher ops"}, w);
  struct Case {
    const char* name;
    TimeUs period;
  };
  for (const Case& c : {Case{"L/4 (5s)", kLifetime / 4},
                        Case{"L/2 (10s)", kLifetime / 2},
                        Case{"0.9L (18s)", kLifetime * 9 / 10},
                        Case{"none", 0}}) {
    Outcome o = Measure(c.period, 211);
    bench::Row({c.name, bench::Fmt(100 * o.availability),
                std::to_string(o.publisher_ops)},
               w);
  }
  bench::Note(
      "expected shape: availability falls as renewals become rarer (failures "
      "and expiry go unrepaired longer); publisher cost falls with it. With "
      "no renewal, everything expires after L and availability collapses.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
