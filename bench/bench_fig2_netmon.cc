// Experiment E2 — Figure 2: the top 10 sources of firewall events across the
// network, computed by a distributed aggregation query (§2.2).
//
// The paper's applet ran on 350 PlanetLab nodes over live firewall logs; we
// run the same query over the synthetic heavy-tailed logs of workloads.h on
// 350 simulated nodes, with both aggregation strategies, and check the
// result against ground truth computed centrally.

#include "apps/netmon.h"
#include "apps/workloads.h"
#include "bench/bench_common.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 350;
constexpr int kTopK = 10;

void RunStrategy(NetmonApp* app, const FirewallWorkload& wl,
                 const std::string& strategy) {
  auto truth = wl.GroundTruthTopK(kNodes, kTopK);
  auto got = app->TopKSources(1, kTopK, 20 * kSecond, strategy);

  bench::Title("Figure 2 (strategy=" + strategy + "): top " +
               std::to_string(kTopK) + " firewall event sources, " +
               std::to_string(kNodes) + " nodes");
  std::vector<int> w = {6, 20, 10, 12, 8};
  bench::Row({"rank", "source", "events", "truth", "match"}, w);
  size_t correct = 0;
  for (size_t i = 0; i < got.rows.size(); ++i) {
    bool match = i < truth.size() && got.rows[i].first == truth[i].first &&
                 got.rows[i].second == static_cast<int64_t>(truth[i].second);
    correct += match;
    bench::Row({std::to_string(i + 1), got.rows[i].first,
                std::to_string(got.rows[i].second),
                i < truth.size() ? std::to_string(truth[i].second) : "-",
                match ? "yes" : "NO"},
               w);
  }
  bench::Note("correct rows: " + std::to_string(correct) + "/" +
              std::to_string(kTopK) +
              "   answer latency: " + bench::Ms(got.latency) + "ms");
}

void Run() {
  FirewallOptions fopts;
  fopts.num_sources = 600;
  fopts.events_per_node = 40;
  fopts.seed = 17;
  FirewallWorkload wl(fopts);

  {
    SimPier::Options popts;
    popts.sim.seed = 5;
    popts.settle_time = 10 * kSecond;
    SimPier net(kNodes, popts);
    NetmonApp app(&net);
    app.LoadLogs(wl);
    RunStrategy(&app, wl, "hier");
  }
  {
    SimPier::Options popts;
    popts.sim.seed = 5;
    popts.settle_time = 10 * kSecond;
    SimPier net(kNodes, popts);
    NetmonApp app(&net);
    app.LoadLogs(wl);
    RunStrategy(&app, wl, "flat");
  }
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
