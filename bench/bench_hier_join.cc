// Experiment E7 — §3.3.4 hierarchical joins: offloading the hot bucket's
// out-bandwidth under key skew.
//
// Both tables' join keys are Zipf-skewed, so one hash bucket receives a
// majority of the tuples. In the plain rehash join, that bucket's owner
// produces (and ships to the proxy) most of the join results; in the
// hierarchical join, nodes on the paths to the owner cache in-flight tuples,
// emit matches "early", and the owner suppresses the pairs already produced.
// We report where results were produced and the peak per-node out-bytes.

#include <algorithm>

#include "bench/bench_common.h"
#include "util/logging.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 48;
constexpr int kRowsPerSide = 300;
constexpr double kSkew = 1.2;
constexpr int kKeys = 40;

/// Stores skewed rows of l(k, a) and r(k, b) in situ on random nodes.
/// Key/node draws follow one fixed rng sequence so GroundTruth() below can
/// replay it.
void LoadTables(SimPier* net, uint64_t seed) {
  PIER_CHECK(net->catalog()->Register(TableSpec("l").LocalOnly()).ok());
  PIER_CHECK(net->catalog()->Register(TableSpec("r").LocalOnly()).ok());
  Rng rng(seed);
  ZipfGenerator zipf(kKeys, kSkew);
  for (int i = 0; i < kRowsPerSide; ++i) {
    Tuple l("l");
    l.Append("k", Value::Int64(static_cast<int64_t>(zipf.Sample(&rng))));
    l.Append("a", Value::Int64(i));
    PIER_CHECK(net->client(rng.Uniform(kNodes))->Publish("l", l).ok());
    Tuple r("r");
    r.Append("k", Value::Int64(static_cast<int64_t>(zipf.Sample(&rng))));
    r.Append("b", Value::Int64(i));
    PIER_CHECK(net->client(rng.Uniform(kNodes))->Publish("r", r).ok());
  }
}

struct Outcome {
  uint64_t results = 0;
  uint64_t max_out_bytes = 0;   // peak per-node sent bytes during the query
  int64_t early = -1, owner = -1;  // hierjoin production split
};

Outcome RunJoin(bool hierarchical, uint64_t seed) {
  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.settle_time = 8 * kSecond;
  SimPier net(kNodes, popts);
  LoadTables(&net, seed + 1);
  net.RunFor(1 * kSecond);

  QueryPlan plan;
  plan.query_id = 424200 + hierarchical;
  const TimeUs kTimeout = 16 * kSecond;
  plan.timeout = kTimeout;

  uint32_t join_op_id = 0;
  if (hierarchical) {
    OpGraph& g = plan.AddGraph();
    OpSpec& sl = g.AddOp(OpKind::kScan);
    sl.Set("ns", "l");
    uint32_t sl_id = sl.id;
    OpSpec& sr = g.AddOp(OpKind::kScan);
    sr.Set("ns", "r");
    uint32_t sr_id = sr.id;
    OpSpec& hj = g.AddOp(OpKind::kHierJoin);
    hj.Set("l_key", "k");
    hj.Set("r_key", "k");
    join_op_id = hj.id;
    g.Connect(sl_id, join_op_id, 0);
    g.Connect(sr_id, join_op_id, 1);
  } else {
    // Plain rehash: both sides put into one namespace, owner joins.
    std::string jns = "q" + std::to_string(plan.query_id) + ".join";
    for (const char* side : {"l", "r"}) {
      OpGraph& g = plan.AddGraph();
      OpSpec& scan = g.AddOp(OpKind::kScan);
      scan.Set("ns", side);
      uint32_t scan_id = scan.id;
      OpSpec& put = g.AddOp(OpKind::kPut);
      put.Set("ns", jns);
      put.Set("key", "k");
      g.Connect(scan_id, put.id, 0);
    }
    OpGraph& g3 = plan.AddGraph();
    g3.flush_stage = 1;
    OpSpec& nd = g3.AddOp(OpKind::kNewData);
    nd.Set("ns", jns);
    uint32_t nd_id = nd.id;
    OpSpec& shj = g3.AddOp(OpKind::kSymHashJoin);
    shj.Set("l_key", "k");
    shj.Set("r_key", "k");
    shj.Set("l_table", "l");
    shj.Set("r_table", "r");
    uint32_t shj_id = shj.id;
    g3.Connect(nd_id, shj_id, 0);
    OpSpec& res = g3.AddOp(OpKind::kResult);
    g3.Connect(shj_id, res.id, 0);
  }

  net.harness()->ResetStats();
  Outcome out;
  uint64_t query_id = plan.query_id;
  auto q = net.client(0)->Query(std::move(plan));
  bench::Check(q, "join query").OnTuple([&](const Tuple&) { out.results++; });
  // Sample operator metrics just before the timeout tears the query down.
  net.RunFor(kTimeout - kSecond);
  if (hierarchical) {
    out.early = 0;
    out.owner = 0;
    for (uint32_t i = 0; i < kNodes; ++i) {
      Operator* op =
          net.qp(i)->executor()->FindOp(query_id, 1, join_op_id);
      if (op == nullptr) continue;
      out.early += std::max<int64_t>(0, op->Metric("early_results"));
      out.owner += std::max<int64_t>(0, op->Metric("owner_results"));
    }
  }
  net.RunFor(3 * kSecond);

  for (uint32_t i = 1; i < kNodes; ++i) {  // exclude the proxy (node 0)
    out.max_out_bytes =
        std::max(out.max_out_bytes, net.harness()->node_stats(i).bytes_sent);
  }
  return out;
}

/// The exact join size for the deterministic load (replays LoadTables' rng
/// draw sequence: zipf, node, zipf, node per row pair).
uint64_t GroundTruth(uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(kKeys, kSkew);
  std::vector<uint64_t> nl(kKeys, 0), nr(kKeys, 0);
  for (int i = 0; i < kRowsPerSide; ++i) {
    nl[zipf.Sample(&rng)]++;
    rng.Uniform(kNodes);
    nr[zipf.Sample(&rng)]++;
    rng.Uniform(kNodes);
  }
  uint64_t total = 0;
  for (int k = 0; k < kKeys; ++k) total += nl[k] * nr[k];
  return total;
}

void Run() {
  bench::Title("E7: hierarchical join under Zipf(" + bench::Fmt(kSkew) +
               ") key skew");
  bench::Note(std::to_string(kRowsPerSide) + " rows/side over " +
              std::to_string(kKeys) + " keys on " + std::to_string(kNodes) +
              " nodes");
  Outcome rehash = RunJoin(false, 31);
  Outcome hier = RunJoin(true, 31);
  bench::Note("exact join size (ground truth): " +
              std::to_string(GroundTruth(32)));

  std::vector<int> w = {12, 10, 18, 12, 12};
  bench::Row({"strategy", "results", "max node out-bytes", "early", "owner"}, w);
  bench::Row({"rehash", std::to_string(rehash.results),
              std::to_string(rehash.max_out_bytes), "-", "-"},
             w);
  bench::Row({"hier", std::to_string(hier.results),
              std::to_string(hier.max_out_bytes), std::to_string(hier.early),
              std::to_string(hier.owner)},
             w);
  bench::Note(
      "expected shape: identical result counts; the hierarchical join "
      "produces a meaningful share of results early (at path nodes), "
      "lowering the hottest node's out-bytes relative to rehash.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
