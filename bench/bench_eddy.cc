// Experiment E13 — §4.2.2 eddies: adaptive predicate ordering under a
// mid-query selectivity shift.
//
// Three predicates gate a stream whose data distribution flips halfway: in
// phase one predicate P0 is the most selective, in phase two it is P2. A
// static order pays for the wrong ordering in one of the phases; the eddy's
// observation-driven policy re-learns the ordering online. The work metric
// is total predicate evaluations.

#include "bench/bench_common.h"
#include "util/logging.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

constexpr int kTuplesPerPhase = 4000;

/// Build a local single-node query around an eddy (or fixed chain) and pump
/// two phases of tuples through it. Returns {evaluations, survivors}.
std::pair<int64_t, uint64_t> RunPolicy(const std::string& policy,
                                       bool reversed_static, uint64_t seed) {
  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.settle_time = 2 * kSecond;
  SimPier net(1, popts);

  // Predicates over columns c0, c1, c2 (each uniform in [0, 100)):
  //   P0: c0 < t0    P1: c1 < 50    P2: c2 < t2
  // Phase 1: t0=5 (selective), t2=95 (loose). Phase 2 swaps them.
  QueryPlan plan;
  plan.query_id = 131313;
  plan.timeout = 60 * kSecond;
  OpGraph& g = plan.AddGraph();
  g.dissem = DissemKind::kLocal;
  OpSpec& src = g.AddOp(OpKind::kSource);
  src.SetInt("inject", 1);
  uint32_t src_id = src.id;
  OpSpec& eddy = g.AddOp(OpKind::kEddy);
  eddy.SetInt("n", 3);
  auto pred = [](const std::string& col, int64_t bound) {
    return Expr::Cmp(CmpOp::kLt, Expr::Column(col),
                     Expr::Const(Value::Int64(bound)));
  };
  // Module exprs reference per-tuple thresholds so the same predicate text
  // changes selectivity when the data shifts.
  std::vector<std::string> cols = {"c0", "c1", "c2"};
  if (reversed_static) std::swap(cols[0], cols[2]);
  eddy.SetExpr("mexpr0", pred(cols[0], 50));
  eddy.SetExpr("mexpr1", pred(cols[1], 50));
  eddy.SetExpr("mexpr2", pred(cols[2], 50));
  eddy.Set("policy", policy);
  uint32_t eddy_id = eddy.id;
  g.Connect(src_id, eddy_id, 0);
  OpSpec& res = g.AddOp(OpKind::kResult);
  g.Connect(eddy_id, res.id, 0);

  uint64_t survivors = 0;
  uint64_t query_id = plan.query_id;
  uint32_t graph_id = g.id;
  auto q = net.client(0)->Query(std::move(plan));
  bench::Check(q, "eddy query").OnTuple([&](const Tuple&) { survivors++; });
  net.RunFor(1 * kSecond);

  Rng rng(seed + 9);
  auto inject = [&](int phase) {
    for (int i = 0; i < kTuplesPerPhase; ++i) {
      Tuple t("stream");
      // Phase 1: c0 rarely < 50, c2 usually < 50 => evaluating c0 first is
      // best. Phase 2 flips the distributions.
      int64_t tight = static_cast<int64_t>(rng.Uniform(100));       // ~50% pass
      int64_t low = static_cast<int64_t>(rng.Uniform(100)) + 45;    // ~5% pass
      int64_t high = static_cast<int64_t>(rng.Uniform(100)) - 45;   // ~95% pass
      t.Append("c0", Value::Int64(phase == 1 ? low : high));
      t.Append("c1", Value::Int64(tight));
      t.Append("c2", Value::Int64(phase == 1 ? high : low));
      PIER_CHECK(
          net.qp(0)->executor()->InjectTuple(query_id, graph_id, src_id, t).ok());
      if (i % 512 == 511) net.RunFor(100 * kMillisecond);
    }
    net.RunFor(1 * kSecond);
  };
  inject(1);
  inject(2);

  Operator* op = net.qp(0)->executor()->FindOp(query_id, graph_id, eddy_id);
  int64_t evals = op ? op->Metric("evaluations") : -1;
  return {evals, survivors};
}

void Run() {
  bench::Title("E13: eddy vs static orders under a selectivity shift");
  bench::Note(std::to_string(2 * kTuplesPerPhase) +
              " tuples; the most selective predicate flips mid-stream");
  std::vector<int> w = {26, 16, 12};
  bench::Row({"policy", "evaluations", "survivors"}, w);
  auto [e1, s1] = RunPolicy("fixed", false, 61);
  bench::Row({"static (best for phase 1)", std::to_string(e1),
              std::to_string(s1)}, w);
  auto [e2, s2] = RunPolicy("fixed", true, 61);
  bench::Row({"static (best for phase 2)", std::to_string(e2),
              std::to_string(s2)}, w);
  auto [e3, s3] = RunPolicy("adaptive", false, 61);
  bench::Row({"eddy (adaptive)", std::to_string(e3), std::to_string(s3)}, w);
  bench::Note(
      "expected shape: both static orders pay for the wrong phase; the eddy "
      "tracks the shift and lands near the per-phase optimum (identical "
      "survivor counts prove result equivalence).");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
