// Experiment E10 — the continuous-query lifecycle: does live replanning pay?
//
// A continuous aggregation query (GROUP BY over a NON-partition column, so
// every data-holding node must rehash its per-window partials) is submitted
// while the table is nearly empty — the optimizer's only sound choice is
// flat two-phase aggregation. Mid-run the workload shifts: the table grows
// dense (tuples >> nodes, most nodes holding data), the regime where the
// aggregation tree wins (§3.3.4, src/opt/README.md). A frozen plan keeps
// paying the flat rehash every window forever; `replan=auto` notices the
// shifted statistics, re-runs the optimizer, and swaps to hierarchical
// aggregation at a window boundary.
//
// Four runs share the SAME publish schedule on the SAME seed:
//   no-query      publishes only — the maintenance + publish baseline
//   frozen-flat   what you get today: plan fixed at submission (flat)
//   replan-auto   starts flat, expected to swap to hier after the shift
//   frozen-hier   the post-shift oracle, wrong for the sparse start
// Measured: network bytes during a post-shift steady-state tail, minus the
// no-query baseline — i.e. the query's own per-window aggregation cost —
// plus answers delivered and swap count.
//
// The bench FAILS (nonzero exit) if replan-auto never swaps, or if its tail
// cost is strictly the worst of the three query configurations.
//
// E10b (appended): swap-time catch-up. A running flat continuous query over
// a table with history is plan-swapped mid-stream; the swapped-in Scans
// re-read live soft state, and without the swap-time high-water mark the
// first post-swap window re-counts the whole table. The bench FAILS unless
// the first post-swap window's count matches the steady-state window count.

#include <cstdio>
#include <limits>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "util/logging.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 24;
constexpr int kCats = 32;           // distinct group keys (not the partition)
constexpr int kShiftTuples = 1536;  // the mid-run cardinality shift

struct Outcome {
  uint64_t answers = 0;
  uint32_t replans = 0;
  uint64_t tail_bytes = 0;
};

/// Publish one event: unique id (the partition key — tuples spread across
/// every node), rotating category (the group key).
void PublishOne(SimPier* net, int64_t* next_id) {
  int64_t id = (*next_id)++;
  Tuple e("ev");
  e.Append("id", Value::Int64(id));
  e.Append("cat", Value::String("c" + std::to_string(id % kCats)));
  Status s = net->client(static_cast<uint32_t>(id % kNodes))->Publish("ev", e);
  if (!s.ok()) {
    std::fprintf(stderr, "publish failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

Outcome RunConfig(const std::string& config, uint64_t seed) {
  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.settle_time = 8 * kSecond;
  SimPier net(kNodes, popts);
  PIER_CHECK(net.catalog()->Register(TableSpec("ev").PartitionBy({"id"})).ok());
  net.RunFor(1 * kSecond);
  int64_t next_id = 0;

  Outcome out;
  QueryHandle handle;
  if (config != "no-query") {
    Sql query(
        "SELECT cat, count(*) AS cnt FROM ev GROUP BY cat "
        "TIMEOUT 120s WINDOW 3s CONTINUOUS");
    if (config == "frozen-hier") query.WithAggStrategy("hier");
    if (config == "replan-auto") {
      query.WithReplan("auto");
      net.client(0)->set_replan_period(3 * kSecond);
    }
    auto q = net.client(0)->Query(query);
    handle = bench::Check(q, "continuous query").OnTuple([&](const Tuple&) {
      out.answers++;
    });
  }
  net.RunFor(2 * kSecond);

  // Sparse phase: a trickle, far below the optimizer's trust threshold.
  for (int i = 0; i < 10; ++i) {
    PublishOne(&net, &next_id);
    net.RunFor(2 * kSecond);
  }

  // The shift: the table becomes dense (64 tuples per node), flipping the
  // flat-vs-hier crossover.
  for (int i = 0; i < kShiftTuples; ++i) {
    PublishOne(&net, &next_id);
    if (i % 96 == 95) net.RunFor(1 * kSecond);
  }
  net.RunFor(6 * kSecond);  // replan ticks + re-dissemination settle here

  // Steady-state tail: a heavy live stream (one tuple per node per tick, so
  // every node's partial state flushes every window); identical in every
  // configuration, so the byte delta against the no-query baseline is the
  // query's own per-window aggregation cost.
  uint64_t answers_before_tail = out.answers;
  net.harness()->ResetStats();
  for (int i = 0; i < 160; ++i) {
    for (uint32_t n = 0; n < kNodes; ++n) PublishOne(&net, &next_id);
    net.RunFor(250 * kMillisecond);
  }
  out.tail_bytes = net.harness()->total_bytes();
  if (handle.valid()) out.replans = handle.stats().replans;
  if (std::getenv("E10_DEBUG") && handle.valid()) {
    int flat_nodes = 0, hier_nodes = 0, none = 0;
    for (uint32_t n = 0; n < kNodes; ++n) {
      Operator* op = net.qp(n)->executor()->FindOp(handle.id(), 1, 2);
      if (op == nullptr) none++;
      else if (op->spec().kind == OpKind::kHierAgg) hier_nodes++;
      else flat_nodes++;
    }
    std::fprintf(stderr,
                 "[debug] %s: flat=%d hier=%d none=%d answers pre-tail=%llu "
                 "tail=%llu msgs=%llu\n",
                 config.c_str(), flat_nodes, hier_nodes, none,
                 static_cast<unsigned long long>(answers_before_tail),
                 static_cast<unsigned long long>(out.answers -
                                                 answers_before_tail),
                 static_cast<unsigned long long>(
                     net.harness()->total_msgs()));
  }
  return out;
}

/// E10b — swap-time catch-up suppression, measured on tumbling windows
/// (flat aggregation both sides of the swap, so per-window counts are
/// directly comparable; hier's cumulative refinement would not be).
int RunCatchupCheck(uint64_t seed) {
  bench::Title("E10b: swap-time catch-up — first post-swap window");
  constexpr int kHistory = 400;
  constexpr TimeUs kWindow = 3 * kSecond;
  constexpr int kPerWindow = 9;  // steady stream: 3 tuples/s

  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.settle_time = 8 * kSecond;
  constexpr uint32_t kCheckNodes = 16;
  SimPier net(kCheckNodes, popts);
  PIER_CHECK(net.catalog()->Register(TableSpec("ev").PartitionBy({"id"})).ok());
  net.RunFor(1 * kSecond);
  int64_t next_id = 0;
  auto publish_one = [&]() {
    int64_t id = next_id++;
    Tuple e("ev");
    e.Append("id", Value::Int64(id));
    e.Append("cat", Value::String("c" + std::to_string(id % 4)));
    Status ps =
        net.client(static_cast<uint32_t>(id % kCheckNodes))->Publish("ev", e);
    if (!ps.ok()) {
      std::fprintf(stderr, "publish failed: %s\n", ps.ToString().c_str());
      std::exit(1);
    }
  };

  const char* text =
      "SELECT cat, count(*) AS cnt FROM ev GROUP BY cat "
      "TIMEOUT 90s WINDOW 3s CONTINUOUS";
  auto q = net.client(0)->Query(Sql(text).WithAggStrategy("flat"));
  QueryHandle handle = bench::Check(q, "catch-up query");
  std::map<int64_t, int64_t> window_sums;  // 3s virtual-time buckets
  handle.OnTuple([&](const Tuple& t) {
    const Value* cnt = t.Get("cnt");
    if (cnt != nullptr)
      window_sums[net.loop()->now() / kWindow] += cnt->int64_unchecked();
  });

  // History, fully counted by the pre-swap windows.
  for (int i = 0; i < kHistory; ++i) publish_one();
  net.RunFor(9 * kSecond);

  // Steady stream, one window of which calibrates "steady state".
  auto stream_windows = [&](int n) {
    for (int i = 0; i < n * kPerWindow; ++i) {
      publish_one();
      net.RunFor(kWindow / kPerWindow);
    }
  };
  stream_windows(3);
  // The newest complete bucket is a typical stream window — the yardstick
  // the post-swap windows are held to.
  int64_t last_full = window_sums.empty() ? 0 : window_sums.rbegin()->second;

  // The swap: same strategy, new generation — the swapped-in Scans re-read
  // every live tuple unless the high-water mark stops them.
  auto fresh = net.client(0)->Compile(Sql(text).WithAggStrategy("flat"));
  QueryPlan plan = bench::Check(fresh, "recompile");
  Status s = net.qp(0)->SwapQuery(handle.id(), std::move(plan));
  if (!s.ok()) {
    std::fprintf(stderr, "FAIL: SwapQuery: %s\n", s.ToString().c_str());
    return 1;
  }
  int64_t swap_bucket = net.loop()->now() / kWindow;
  stream_windows(3);

  int64_t worst_post = 0;
  for (const auto& [bucket, sum] : window_sums) {
    if (bucket >= swap_bucket) worst_post = std::max(worst_post, sum);
  }
  std::vector<int> w = {26, 12};
  bench::Row({"history at swap", std::to_string(next_id - 3 * kPerWindow)},
             w);
  bench::Row({"steady window (pre-swap)", std::to_string(last_full)}, w);
  bench::Row({"worst window post-swap", std::to_string(worst_post)}, w);

  // Self-check: the first post-swap window must look like a steady window
  // (one window's arrivals, plus the swap-boundary sliver), nowhere near
  // the table's history.
  if (worst_post > 3 * kPerWindow + kPerWindow) {
    std::fprintf(stderr,
                 "FAIL: first post-swap window counted %lld tuples — "
                 "swapped-in scans re-read history (steady window is ~%d)\n",
                 static_cast<long long>(worst_post), kPerWindow);
    return 1;
  }
  bench::Note("ok: post-swap windows match steady state (no double-count)");
  return 0;
}

int Run() {
  bench::Title("E10: continuous-query replanning under a cardinality shift");
  bench::Note("query submitted over a near-empty table (flat aggregation is "
              "the only sound choice), then " +
              std::to_string(kShiftTuples) + " tuples arrive across " +
              std::to_string(kNodes) +
              " nodes; tail = 40s steady stream after the shift");
  std::vector<int> w = {14, 10, 9, 12, 14};
  bench::Row({"config", "answers", "replans", "tail KB", "query KB"}, w);

  int failures = 0;
  uint64_t baseline = RunConfig("no-query", 707).tail_bytes;
  bench::Row({"no-query", "-", "-", bench::Fmt(baseline / 1024.0, 0), "0"},
             w);
  std::map<std::string, int64_t> query_cost;
  uint32_t auto_replans = 0;
  for (const char* config : {"frozen-flat", "replan-auto", "frozen-hier"}) {
    Outcome o = RunConfig(config, 707);
    int64_t cost = static_cast<int64_t>(o.tail_bytes) -
                   static_cast<int64_t>(baseline);
    query_cost[config] = cost;
    if (std::string(config) == "replan-auto") auto_replans = o.replans;
    bench::Row({config, std::to_string(o.answers),
                std::to_string(o.replans),
                bench::Fmt(o.tail_bytes / 1024.0, 0),
                bench::Fmt(cost / 1024.0, 0)},
               w);
  }

  if (auto_replans == 0) {
    std::fprintf(stderr,
                 "FAIL: replan=auto never swapped the plan after the shift\n");
    failures++;
  }
  std::string worst;
  int64_t worst_bytes = std::numeric_limits<int64_t>::min();
  bool unique_worst = false;
  for (const auto& [name, bytes] : query_cost) {
    if (bytes > worst_bytes) {
      worst = name;
      worst_bytes = bytes;
      unique_worst = true;
    } else if (bytes == worst_bytes) {
      unique_worst = false;
    }
  }
  if (unique_worst && worst == "replan-auto") {
    std::fprintf(stderr,
                 "FAIL: replan-auto is the worst measured configuration "
                 "(%lld query tail bytes)\n",
                 static_cast<long long>(worst_bytes));
    failures++;
  }

  bench::Note(
      "expected shape: frozen-flat pays the full per-window partial rehash "
      "forever; replan-auto swaps to hier once the shifted stats clear the "
      "cost-ratio threshold and then tracks frozen-hier's tail cost; "
      "frozen-hier is the post-shift oracle (but was the wrong plan for the "
      "sparse start).");
  failures += RunCatchupCheck(709);
  return failures;
}

}  // namespace
}  // namespace pier

int main() { return pier::Run(); }
