// Experiment E12 — §3.1.4's simulator scalability: "capable of simulating
// thousands of virtual nodes on a single physical machine".
//
// For each N we boot a seeded DHT network, apply a light put/get workload,
// run 30 virtual seconds, and report wall-clock time, executed events, and
// events per wall second. The claim holds if wall time grows roughly
// linearly in total event count (no super-linear blowup with N).

#include <chrono>

#include "bench/bench_common.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

void Measure(uint32_t n) {
  auto t0 = std::chrono::steady_clock::now();

  SimOverlay::Options opts;
  opts.sim.seed = 23;
  opts.seed_routing = true;
  opts.settle_time = 1 * kSecond;
  SimOverlay net(n, opts);

  // One put and one get per node, spread over the run.
  Rng rng(99);
  for (uint32_t i = 0; i < n; ++i) {
    net.dht(i)->Put("load", "k" + std::to_string(rng.Next() % (n * 4)), "s",
                    "value", 60 * kSecond);
  }
  net.RunFor(10 * kSecond);
  for (uint32_t i = 0; i < n; ++i) {
    net.dht(i)->Get("load", "k" + std::to_string(rng.Next() % (n * 4)),
                    [](const Status&, std::vector<DhtItem>) {});
  }
  net.RunFor(20 * kSecond);

  auto t1 = std::chrono::steady_clock::now();
  double wall_s = std::chrono::duration<double>(t1 - t0).count();
  uint64_t events = net.loop()->events_executed();

  std::vector<int> w = {8, 12, 14, 16, 16};
  bench::Row({std::to_string(n), bench::Fmt(wall_s, 2),
              std::to_string(events),
              bench::Fmt(events / wall_s / 1000.0, 0) + "k/s",
              bench::Fmt(wall_s / 30.0, 3)},
             w);
}

void Run() {
  bench::Title("E12: simulator scalability (30 virtual seconds per N)");
  std::vector<int> w = {8, 12, 14, 16, 16};
  bench::Row({"N", "wall s", "events", "events/wall-s", "wall-s/sim-s"}, w);
  for (uint32_t n : {100u, 500u, 1000u, 2000u, 4000u}) Measure(n);
  bench::Note(
      "expected shape: events grow ~linearly with N (maintenance dominates); "
      "events/wall-second stays in the same order of magnitude, i.e. "
      "thousands of nodes are simulable on one machine.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
