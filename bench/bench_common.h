// Shared helpers for the experiment binaries: fixed-width table printing and
// latency CDF summaries. Every bench prints its parameters first so runs are
// self-describing (there is no separate config file).

#ifndef PIER_BENCH_BENCH_COMMON_H_
#define PIER_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/vri.h"

namespace pier {
namespace bench {

inline void Title(const std::string& s) {
  std::printf("\n=== %s ===\n", s.c_str());
}

/// Unwrap a Result or die: a bench that silently measures a query that never
/// ran would print fabricated zeros, so failures must be loud.
template <typename T>
T& Check(Result<T>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return *r;
}

inline void Note(const std::string& s) { std::printf("%s\n", s.c_str()); }

/// Fixed-width row printer: Row({"a", "b"}) with widths {12, 8}.
inline void Row(const std::vector<std::string>& cells,
                const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Ms(TimeUs t) {
  if (t < 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(t) / kMillisecond);
  return buf;
}

inline std::string Fmt(double v, int digits = 1) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// First-result-latency CDF over a query set. Latencies < 0 mean "no answer
/// before the deadline"; they count in the denominator, so the CDF plateaus
/// below 100% exactly as in the paper's Figure 1.
struct LatencyCdf {
  std::vector<TimeUs> latencies;  // -1 = unanswered
  void Add(TimeUs t) { latencies.push_back(t); }

  double AnsweredFraction() const {
    if (latencies.empty()) return 0;
    size_t n = 0;
    for (TimeUs t : latencies) n += (t >= 0);
    return static_cast<double>(n) / latencies.size();
  }

  /// Fraction of queries answered within `t`.
  double At(TimeUs t) const {
    if (latencies.empty()) return 0;
    size_t n = 0;
    for (TimeUs x : latencies) n += (x >= 0 && x <= t);
    return static_cast<double>(n) / latencies.size();
  }

  /// Latency at which `pct` percent of queries are answered (-1 if never).
  TimeUs Percentile(double pct) const {
    std::vector<TimeUs> answered;
    for (TimeUs t : latencies) {
      if (t >= 0) answered.push_back(t);
    }
    std::sort(answered.begin(), answered.end());
    size_t need = static_cast<size_t>(pct / 100.0 * latencies.size());
    if (need == 0) need = 1;
    if (need > answered.size()) return -1;
    return answered[need - 1];
  }
};

}  // namespace bench
}  // namespace pier

#endif  // PIER_BENCH_BENCH_COMMON_H_
