// Experiment E5 — §2.1.1's scalability claim: per-operation overhead grows
// only logarithmically with the number of nodes.
//
// For each network size and routing protocol we issue routed sends between
// random (node, identifier) pairs and report the mean delivery hop count,
// plus the mean virtual-time latency of a two-phase get. The hop counts
// should track log2(N)/2-ish for Chord and log16(N) for the prefix router.

#include <cmath>

#include "bench/bench_common.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

struct Point {
  double mean_hops = 0;
  double get_ms = 0;
};

Point Measure(uint32_t n, ProtocolKind kind, uint64_t seed) {
  SimOverlay::Options opts;
  opts.sim.seed = seed;
  opts.dht.router.protocol = kind;
  opts.seed_routing = true;
  opts.settle_time = 2 * kSecond;
  SimOverlay net(n, opts);

  const int kOps = 200;
  Rng rng(seed * 7 + 1);
  // Routed sends: hop counts are recorded by the owner's Dht stats.
  for (int i = 0; i < kOps; ++i) {
    uint32_t src = static_cast<uint32_t>(rng.Uniform(n));
    net.dht(src)->Send("scale", "k" + std::to_string(rng.Next()), "s", "x",
                       60 * kSecond);
  }
  net.RunFor(10 * kSecond);

  uint64_t deliveries = 0, hops = 0;
  for (uint32_t i = 0; i < n; ++i) {
    deliveries += net.dht(i)->stats().routed_deliveries;
    hops += net.dht(i)->stats().routed_delivery_hops;
  }

  // Two-phase gets: measure virtual latency (issued concurrently so large
  // networks don't spend hundreds of virtual seconds on maintenance).
  TimeUs total_get = 0;
  int got = 0;
  TimeUs start = net.loop()->now();
  for (int i = 0; i < 50; ++i) {
    uint32_t src = static_cast<uint32_t>(rng.Uniform(n));
    net.dht(src)->Get("scale", "probe" + std::to_string(i),
                      [&, start](const Status&, std::vector<DhtItem>) {
                        total_get += net.loop()->now() - start;
                        got++;
                      });
  }
  net.RunFor(8 * kSecond);

  Point p;
  p.mean_hops = deliveries ? static_cast<double>(hops) / deliveries : 0;
  p.get_ms = got ? static_cast<double>(total_get) / got / kMillisecond : -1;
  return p;
}

void Run() {
  bench::Title("E5: DHT per-op overhead vs network size (log-N claim)");
  std::vector<int> w = {8, 14, 14, 14, 14, 10};
  bench::Row({"N", "chord hops", "chord get ms", "prefix hops",
              "prefix get ms", "log2(N)"},
             w);
  for (uint32_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    Point chord = Measure(n, ProtocolKind::kChord, 11);
    Point prefix = Measure(n, ProtocolKind::kPrefix, 11);
    bench::Row({std::to_string(n), bench::Fmt(chord.mean_hops, 2),
                bench::Fmt(chord.get_ms), bench::Fmt(prefix.mean_hops, 2),
                bench::Fmt(prefix.get_ms),
                bench::Fmt(std::log2(static_cast<double>(n)), 1)},
               w);
  }
  bench::Note(
      "expected shape: hop counts grow ~logarithmically; prefix routing takes "
      "fewer hops than Chord at equal N (wider routing-table digits).");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
