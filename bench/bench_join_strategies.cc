// Experiment E8 — §2.1.1 / §3.3.4 join strategies (the [32] trade-off recap):
// symmetric-hash rehash vs Fetch Matches vs Bloom-filtered rehash, swept
// over join selectivity.
//
// R has 600 rows; S has 600 rows published on the join attribute; a fraction
// sigma of R's keys have matches in S. Reported per strategy: result count,
// total network bytes attributable to the query, and last-result latency.
// Expected: FM wins when the inner is indexed on the join key (one lookup
// per outer row); the Bloom rewrite prunes the rehash traffic of
// non-matching R rows, winning at low sigma; plain rehash ships everything.
//
// An extra "optimizer" row runs whatever the cost-based optimizer picks from
// the statistics accrued while the tables loaded; the bench FAILS (nonzero
// exit) if that pick is ever strictly the worst measured strategy.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/bench_common.h"
#include "util/logging.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 40;
constexpr int kRows = 600;

void LoadTables(SimPier* net, double sigma, uint64_t seed) {
  Rng rng(seed);
  // S published on join attr y (the primary index); R is in-situ.
  PIER_CHECK(net->catalog()->Register(TableSpec("s").PartitionBy({"y"})).ok());
  PIER_CHECK(net->catalog()->Register(TableSpec("r").LocalOnly()).ok());
  // S keys: 0..kRows-1.
  for (int i = 0; i < kRows; ++i) {
    Tuple s("s");
    s.Append("y", Value::Int64(i));
    s.Append("b", Value::Int64(1000 + i));
    PIER_CHECK(net->client(rng.Uniform(kNodes))->Publish("s", s).ok());
  }
  // R keys: fraction sigma inside S's key range, the rest far outside.
  // R rows carry a fat payload — the regime where Bloom pruning pays: the
  // filter costs a few KB once, each pruned tuple saves a full shipment
  // (Mackert & Lohman's semijoin/Bloom-join economics [44]).
  std::string payload(200, 'x');
  for (int i = 0; i < kRows; ++i) {
    bool match = rng.NextDouble() < sigma;
    int64_t x = match ? static_cast<int64_t>(rng.Uniform(kRows))
                      : static_cast<int64_t>(1000000 + rng.Uniform(1000000));
    Tuple r("r");
    r.Append("x", Value::Int64(x));
    r.Append("a", Value::Int64(i));
    r.Append("blob", Value::Bytes(payload));
    PIER_CHECK(net->client(rng.Uniform(kNodes))->Publish("r", r).ok());
  }
}

struct Outcome {
  uint64_t results = 0;
  uint64_t bytes = 0;
  TimeUs last_result = -1;
};

Outcome RunStrategy(const std::string& strategy, double sigma, uint64_t seed,
                    std::string* optimizer_pick = nullptr) {
  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.settle_time = 8 * kSecond;
  SimPier net(kNodes, popts);
  LoadTables(&net, sigma, seed + 2);
  net.RunFor(2 * kSecond);

  const TimeUs kTimeout = 16 * kSecond;
  QueryPlan plan;
  plan.query_id = 886600 + static_cast<uint64_t>(sigma * 100);
  plan.timeout = kTimeout;
  std::string qns = "q" + std::to_string(plan.query_id);

  if (strategy == "optimizer") {
    // The runtime rehashes batch-at-a-time (PutOp ships one DHT batch per
    // input batch), so the optimizer must price puts with the batching
    // discount — per-message overhead amortized by the effective batch
    // size — or it overestimates rehash traffic relative to what the fixed
    // strategies actually measure. 8 is a conservative effective batch for
    // scan-fed rehash on this topology.
    CostParams cp = net.client(0)->cost_params();
    cp.put_batch = 8;
    net.client(0)->set_cost_params(cp);
    // Compile through the client: the optimizer sees the publish-time stats
    // the loads accrued and picks the join strategy itself.
    auto ex = net.client(0)->Explain(
        Sql("SELECT * FROM r rr, s ss WHERE rr.x = ss.y TIMEOUT 16s"));
    if (!ex.ok()) {
      std::fprintf(stderr, "explain failed: %s\n",
                   ex.status().ToString().c_str());
      std::exit(1);
    }
    plan = std::move(ex->plan);
    std::string pick = "rehash";
    for (const OpGraph& g : plan.graphs) {
      for (const OpSpec& op : g.ops) {
        if (op.kind == OpKind::kBloomProbe) pick = "bloom";
        if (op.kind == OpKind::kFetchMatches && pick == "rehash")
          pick = "fetch-matches";
      }
    }
    if (optimizer_pick != nullptr) *optimizer_pick = pick;
  } else if (strategy == "fetch-matches") {
    OpGraph& g = plan.AddGraph();
    OpSpec& scan = g.AddOp(OpKind::kScan);
    scan.Set("ns", "r");
    uint32_t scan_id = scan.id;
    OpSpec& fm = g.AddOp(OpKind::kFetchMatches);
    fm.Set("table", "s");
    fm.SetExpr("key_expr", Expr::Column("x"));
    uint32_t fm_id = fm.id;
    g.Connect(scan_id, fm_id, 0);
    OpSpec& res = g.AddOp(OpKind::kResult);
    g.Connect(fm_id, res.id, 0);
  } else {
    // Rehash plan; optionally Bloom-filter R against S's keys first.
    std::string jns = qns + ".join";
    std::string fns = qns + ".bloom";
    {
      OpGraph& g = plan.AddGraph();  // S side: scan the published partitions
      OpSpec& scan = g.AddOp(OpKind::kScan);
      scan.Set("ns", "s");
      uint32_t tail = scan.id;
      if (strategy == "bloom") {
        OpSpec& bc = g.AddOp(OpKind::kBloomCreate);
        bc.Set("col", "y");
        bc.Set("ns", fns);
        bc.SetInt("bits", 4096);
        g.Connect(tail, bc.id, 0);
        // The filter publishes on flush; S tuples also flow to the rehash.
      }
      OpSpec& put = g.AddOp(OpKind::kPut);
      put.Set("ns", jns);
      put.Set("key", "y");
      g.Connect(tail, put.id, 0);
    }
    {
      OpGraph& g = plan.AddGraph();  // R side
      OpSpec& scan = g.AddOp(OpKind::kScan);
      scan.Set("ns", "r");
      uint32_t tail = scan.id;
      if (strategy == "bloom") {
        OpSpec& bp = g.AddOp(OpKind::kBloomProbe);
        bp.Set("col", "x");
        bp.Set("ns", fns);
        bp.SetInt("wait_ms", 6000);
        g.Connect(tail, bp.id, 0);
        tail = bp.id;
      }
      OpSpec& put = g.AddOp(OpKind::kPut);
      put.Set("ns", jns);
      put.Set("key", "x");
      g.Connect(tail, put.id, 0);
    }
    {
      OpGraph& g = plan.AddGraph();
      g.flush_stage = 1;
      OpSpec& nd = g.AddOp(OpKind::kNewData);
      nd.Set("ns", jns);
      uint32_t nd_id = nd.id;
      OpSpec& shj = g.AddOp(OpKind::kSymHashJoin);
      shj.Set("l_key", "x");
      shj.Set("r_key", "y");
      shj.Set("l_table", "r");
      shj.Set("r_table", "s");
      uint32_t shj_id = shj.id;
      g.Connect(nd_id, shj_id, 0);
      OpSpec& res = g.AddOp(OpKind::kResult);
      g.Connect(shj_id, res.id, 0);
    }
  }

  net.harness()->ResetStats();
  Outcome out;
  TimeUs start = net.loop()->now();
  auto q = net.client(0)->Query(std::move(plan));
  bench::Check(q, "join query").OnTuple([&](const Tuple&) {
    out.results++;
    out.last_result = net.loop()->now() - start;
  });
  net.RunFor(kTimeout + 2 * kSecond);
  out.bytes = net.harness()->total_bytes();
  return out;
}

int Run() {
  bench::Title("E8: join strategies vs selectivity");
  bench::Note(std::to_string(kRows) +
              " rows/side; S published on the join attribute; sigma = "
              "fraction of R rows with a match");
  std::vector<int> w = {8, 18, 10, 14, 14};
  bench::Row({"sigma", "strategy", "results", "total KB", "last result ms"}, w);
  int failures = 0;
  for (double sigma : {0.05, 0.25, 1.0}) {
    std::map<std::string, uint64_t> measured;  // fixed strategy -> bytes
    for (const char* strategy : {"rehash", "bloom", "fetch-matches"}) {
      Outcome o = RunStrategy(strategy, sigma, 401);
      measured[strategy] = o.bytes;
      bench::Row({bench::Fmt(sigma, 2), strategy, std::to_string(o.results),
                  bench::Fmt(o.bytes / 1024.0, 0), bench::Ms(o.last_result)},
                 w);
    }
    std::string pick;
    Outcome o = RunStrategy("optimizer", sigma, 401, &pick);
    bench::Row({bench::Fmt(sigma, 2), "optimizer=" + pick,
                std::to_string(o.results), bench::Fmt(o.bytes / 1024.0, 0),
                bench::Ms(o.last_result)},
               w);
    // The pick must never be strictly the worst measured strategy.
    std::string worst;
    uint64_t worst_bytes = 0;
    bool unique_worst = false;
    for (const auto& [name, bytes] : measured) {
      if (bytes > worst_bytes) {
        worst = name;
        worst_bytes = bytes;
        unique_worst = true;
      } else if (bytes == worst_bytes) {
        unique_worst = false;
      }
    }
    if (unique_worst && pick == worst) {
      std::fprintf(stderr,
                   "FAIL: sigma=%.2f optimizer picked '%s', the worst "
                   "measured strategy (%llu bytes)\n",
                   sigma, pick.c_str(),
                   static_cast<unsigned long long>(worst_bytes));
      failures++;
    }
  }
  bench::Note(
      "expected shape: result counts agree across strategies at each sigma; "
      "bloom's byte cost tracks sigma (it prunes non-matching R rows before "
      "the rehash); rehash pays full shipping regardless; fetch-matches "
      "costs one DHT get per R row, independent of sigma; the optimizer row "
      "replays whatever the cost model picked from the accrued stats.");
  return failures;
}

}  // namespace
}  // namespace pier

int main() { return pier::Run(); }
