// Experiment E8 — §2.1.1 / §3.3.4 join strategies (the [32] trade-off recap):
// symmetric-hash rehash vs Fetch Matches vs Bloom-filtered rehash, swept
// over join selectivity.
//
// R has 600 rows; S has 600 rows published on the join attribute; a fraction
// sigma of R's keys have matches in S. Reported per strategy: result count,
// total network bytes attributable to the query, and last-result latency.
// Expected: FM wins when the inner is indexed on the join key (one lookup
// per outer row); the Bloom rewrite prunes the rehash traffic of
// non-matching R rows, winning at low sigma; plain rehash ships everything.

#include "bench/bench_common.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 40;
constexpr int kRows = 600;

void LoadTables(SimPier* net, double sigma, uint64_t seed) {
  Rng rng(seed);
  // S published on join attr y (the primary index); R is in-situ.
  net->catalog()->Register(TableSpec("s").PartitionBy({"y"}));
  net->catalog()->Register(TableSpec("r").LocalOnly());
  // S keys: 0..kRows-1.
  for (int i = 0; i < kRows; ++i) {
    Tuple s("s");
    s.Append("y", Value::Int64(i));
    s.Append("b", Value::Int64(1000 + i));
    net->client(rng.Uniform(kNodes))->Publish("s", s);
  }
  // R keys: fraction sigma inside S's key range, the rest far outside.
  // R rows carry a fat payload — the regime where Bloom pruning pays: the
  // filter costs a few KB once, each pruned tuple saves a full shipment
  // (Mackert & Lohman's semijoin/Bloom-join economics [44]).
  std::string payload(200, 'x');
  for (int i = 0; i < kRows; ++i) {
    bool match = rng.NextDouble() < sigma;
    int64_t x = match ? static_cast<int64_t>(rng.Uniform(kRows))
                      : static_cast<int64_t>(1000000 + rng.Uniform(1000000));
    Tuple r("r");
    r.Append("x", Value::Int64(x));
    r.Append("a", Value::Int64(i));
    r.Append("blob", Value::Bytes(payload));
    net->client(rng.Uniform(kNodes))->Publish("r", r);
  }
}

struct Outcome {
  uint64_t results = 0;
  uint64_t bytes = 0;
  TimeUs last_result = -1;
};

Outcome RunStrategy(const std::string& strategy, double sigma, uint64_t seed) {
  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.settle_time = 8 * kSecond;
  SimPier net(kNodes, popts);
  LoadTables(&net, sigma, seed + 2);
  net.RunFor(2 * kSecond);

  const TimeUs kTimeout = 16 * kSecond;
  QueryPlan plan;
  plan.query_id = 886600 + static_cast<uint64_t>(sigma * 100);
  plan.timeout = kTimeout;
  std::string qns = "q" + std::to_string(plan.query_id);

  if (strategy == "fetch-matches") {
    OpGraph& g = plan.AddGraph();
    OpSpec& scan = g.AddOp(OpKind::kScan);
    scan.Set("ns", "r");
    uint32_t scan_id = scan.id;
    OpSpec& fm = g.AddOp(OpKind::kFetchMatches);
    fm.Set("table", "s");
    fm.SetExpr("key_expr", Expr::Column("x"));
    uint32_t fm_id = fm.id;
    g.Connect(scan_id, fm_id, 0);
    OpSpec& res = g.AddOp(OpKind::kResult);
    g.Connect(fm_id, res.id, 0);
  } else {
    // Rehash plan; optionally Bloom-filter R against S's keys first.
    std::string jns = qns + ".join";
    std::string fns = qns + ".bloom";
    {
      OpGraph& g = plan.AddGraph();  // S side: scan the published partitions
      OpSpec& scan = g.AddOp(OpKind::kScan);
      scan.Set("ns", "s");
      uint32_t tail = scan.id;
      if (strategy == "bloom") {
        OpSpec& bc = g.AddOp(OpKind::kBloomCreate);
        bc.Set("col", "y");
        bc.Set("ns", fns);
        bc.SetInt("bits", 4096);
        g.Connect(tail, bc.id, 0);
        // The filter publishes on flush; S tuples also flow to the rehash.
      }
      OpSpec& put = g.AddOp(OpKind::kPut);
      put.Set("ns", jns);
      put.Set("key", "y");
      g.Connect(tail, put.id, 0);
    }
    {
      OpGraph& g = plan.AddGraph();  // R side
      OpSpec& scan = g.AddOp(OpKind::kScan);
      scan.Set("ns", "r");
      uint32_t tail = scan.id;
      if (strategy == "bloom") {
        OpSpec& bp = g.AddOp(OpKind::kBloomProbe);
        bp.Set("col", "x");
        bp.Set("ns", fns);
        bp.SetInt("wait_ms", 6000);
        g.Connect(tail, bp.id, 0);
        tail = bp.id;
      }
      OpSpec& put = g.AddOp(OpKind::kPut);
      put.Set("ns", jns);
      put.Set("key", "x");
      g.Connect(tail, put.id, 0);
    }
    {
      OpGraph& g = plan.AddGraph();
      g.flush_stage = 1;
      OpSpec& nd = g.AddOp(OpKind::kNewData);
      nd.Set("ns", jns);
      uint32_t nd_id = nd.id;
      OpSpec& shj = g.AddOp(OpKind::kSymHashJoin);
      shj.Set("l_key", "x");
      shj.Set("r_key", "y");
      shj.Set("l_table", "r");
      shj.Set("r_table", "s");
      uint32_t shj_id = shj.id;
      g.Connect(nd_id, shj_id, 0);
      OpSpec& res = g.AddOp(OpKind::kResult);
      g.Connect(shj_id, res.id, 0);
    }
  }

  net.harness()->ResetStats();
  Outcome out;
  TimeUs start = net.loop()->now();
  auto q = net.client(0)->Query(std::move(plan));
  bench::Check(q, "join query").OnTuple([&](const Tuple&) {
    out.results++;
    out.last_result = net.loop()->now() - start;
  });
  net.RunFor(kTimeout + 2 * kSecond);
  out.bytes = net.harness()->total_bytes();
  return out;
}

void Run() {
  bench::Title("E8: join strategies vs selectivity");
  bench::Note(std::to_string(kRows) +
              " rows/side; S published on the join attribute; sigma = "
              "fraction of R rows with a match");
  std::vector<int> w = {8, 16, 10, 14, 14};
  bench::Row({"sigma", "strategy", "results", "total KB", "last result ms"}, w);
  for (double sigma : {0.05, 0.25, 1.0}) {
    for (const char* strategy : {"rehash", "bloom", "fetch-matches"}) {
      Outcome o = RunStrategy(strategy, sigma, 401);
      bench::Row({bench::Fmt(sigma, 2), strategy, std::to_string(o.results),
                  bench::Fmt(o.bytes / 1024.0, 0), bench::Ms(o.last_result)},
                 w);
    }
  }
  bench::Note(
      "expected shape: result counts agree across strategies at each sigma; "
      "bloom's byte cost tracks sigma (it prunes non-matching R rows before "
      "the rehash); rehash pays full shipping regardless; fetch-matches "
      "costs one DHT get per R row, independent of sigma.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
