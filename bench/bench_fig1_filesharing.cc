// Experiment E1 — Figure 1: CDF of first-result latency for filesharing
// search. PIER (rare items) vs Gnutella (all queries) vs Gnutella (rare
// items), same transit-stub latency model for both systems.
//
// The paper ran real intercepted Gnutella queries on PlanetLab; here both
// systems run over the synthetic corpus of workloads.h (Zipf keyword
// popularity, replication proportional to file popularity — see DESIGN.md
// §2). The reproduction target is the *shape*: flooding answers popular
// queries fast but leaves much of the rare tail unanswered, while the PIER
// keyword index answers nearly all rare queries within a few routing hops.

#include "apps/filesharing.h"
#include "apps/gnutella.h"
#include "apps/workloads.h"
#include "bench/bench_common.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

// The live Gnutella network dwarfed any flood's TTL horizon; the paper's
// PlanetLab PIER deployment indexed the content the flood could not reach.
// To reproduce that regime in one simulation, the network must be large
// relative to the flood: degree 3 / TTL 3 reaches ~20 of 300 nodes (~7%),
// standing in for the real system's vanishing flood coverage.
constexpr uint32_t kNodes = 300;
constexpr int kQueries = 100;
constexpr int kGnutellaTtl = 3;
constexpr int kGnutellaDegree = 3;
constexpr uint64_t kRareThreshold = 4;  // max doc-frequency of a "rare" kw
constexpr TimeUs kWait = 12 * kSecond;

void Run() {
  bench::Title("Figure 1: first-result latency CDF, PIER vs Gnutella");
  bench::Note("nodes=" + std::to_string(kNodes) +
              " queries=" + std::to_string(kQueries) +
              " gnutella_ttl=" + std::to_string(kGnutellaTtl) +
              " gnutella_degree=" + std::to_string(kGnutellaDegree) +
              " rare=doc_freq<=" + std::to_string(kRareThreshold));

  CorpusOptions copts;
  copts.num_files = 2000;
  copts.vocab_size = 1000;
  copts.keywords_per_file = 3;
  copts.max_replicas = 60;  // the most popular file sits on ~20% of nodes
  copts.seed = 101;
  FilesharingCorpus corpus(copts, kNodes);

  Rng qrng(202);
  auto all_queries =
      corpus.MakeQueries(kQueries, 1, /*rare_only=*/false, kRareThreshold, &qrng);
  auto rare_queries =
      corpus.MakeQueries(kQueries, 1, /*rare_only=*/true, kRareThreshold, &qrng);

  // --- Gnutella baseline ------------------------------------------------------
  GnutellaSim::Options gopts;
  gopts.sim.seed = 303;
  gopts.degree = kGnutellaDegree;
  GnutellaSim gnutella(kNodes, gopts);
  for (const CorpusFile& f : corpus.files()) {
    for (uint32_t h : f.hosts) gnutella.node(h)->AddLocalFile(f.file_id, f.keywords);
  }

  Rng origin_rng(404);
  bench::LatencyCdf g_all, g_rare;
  for (const auto& q : all_queries) {
    g_all.Add(gnutella.RunQuery(
        static_cast<uint32_t>(origin_rng.Uniform(kNodes)), q.keywords,
        kGnutellaTtl, kWait));
  }
  for (const auto& q : rare_queries) {
    g_rare.Add(gnutella.RunQuery(
        static_cast<uint32_t>(origin_rng.Uniform(kNodes)), q.keywords,
        kGnutellaTtl, kWait));
  }

  // --- PIER -------------------------------------------------------------------
  SimPier::Options popts;
  popts.sim.seed = 303;  // same topology family and seed as the baseline
  popts.settle_time = 8 * kSecond;
  SimPier pier(kNodes, popts);
  FilesharingApp app(&pier);
  app.PublishCorpus(corpus);

  bench::LatencyCdf p_rare;
  Rng p_origin_rng(404);
  for (const auto& q : rare_queries) {
    auto r = app.Search(static_cast<uint32_t>(p_origin_rng.Uniform(kNodes)),
                        q.keywords, 10 * kSecond, kWait);
    p_rare.Add(r.found ? r.first_result_latency : -1);
  }

  // --- The figure, as a table --------------------------------------------------
  std::vector<int> w = {22, 16, 16, 16};
  bench::Row({"latency<=", "PIER(rare)%", "Gnutella(all)%", "Gnutella(rare)%"}, w);
  for (TimeUs t : {100 * kMillisecond, 250 * kMillisecond, 500 * kMillisecond,
                   1 * kSecond, 2 * kSecond, 5 * kSecond, 10 * kSecond, kWait}) {
    bench::Row({bench::Ms(t) + "ms", bench::Fmt(100 * p_rare.At(t)),
                bench::Fmt(100 * g_all.At(t)), bench::Fmt(100 * g_rare.At(t))},
               w);
  }
  bench::Row({"answered(total)", bench::Fmt(100 * p_rare.AnsweredFraction()),
              bench::Fmt(100 * g_all.AnsweredFraction()),
              bench::Fmt(100 * g_rare.AnsweredFraction())},
             w);
  bench::Note("");
  bench::Note("median latency: PIER(rare)=" + bench::Ms(p_rare.Percentile(50)) +
              "ms  Gnutella(all)=" + bench::Ms(g_all.Percentile(50)) +
              "ms  Gnutella(rare)=" + bench::Ms(g_rare.Percentile(50)) + "ms");
  bench::Note(
      "expected shape (paper): PIER answers nearly all rare queries; Gnutella "
      "answers most popular queries fast but misses a large fraction of the "
      "rare subset within its TTL horizon.");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
