// Experiment E14 — §3.2.2 churn: lookup success under node arrival and
// departure, with the routing protocols' own maintenance doing the repair
// (no oracle reseeding).
//
// Nodes join live through a bootstrap. A churn process kills a random node
// and adds a fresh one every `interval`; publishers keep re-putting a
// working set; readers sample gets. We sweep the churn interval (mean node
// lifetime = N * interval / 2-ish) and report get success rates and routing
// dead-ends.

#include "bench/bench_common.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

constexpr uint32_t kNodes = 40;
constexpr TimeUs kRunTime = 240 * kSecond;
constexpr int kObjects = 60;

struct Outcome {
  double get_success = 0;
  uint64_t dead_ends = 0;
  uint32_t failed_nodes = 0;
};

Outcome Measure(TimeUs churn_interval, uint64_t seed) {
  SimOverlay::Options opts;
  opts.sim.seed = seed;
  opts.seed_routing = false;       // live joins; maintenance must do the work
  opts.settle_time = 40 * kSecond;  // initial convergence
  SimOverlay net(kNodes, opts);

  auto key = [](int i) { return "c" + std::to_string(i); };
  Rng rng(seed + 17);
  uint64_t probes = 0, hits = 0;
  uint32_t failed = 0;

  TimeUs next_churn = churn_interval > 0 ? churn_interval : kRunTime + kSecond;
  for (TimeUs t = 0; t < kRunTime; t += kSecond) {
    // Publishers continuously refresh the working set with short lifetimes,
    // so ownership moves with the ring as churn proceeds.
    if (t % (10 * kSecond) == 0) {
      for (int i = 0; i < kObjects; ++i) {
        uint32_t pub;
        do {
          pub = static_cast<uint32_t>(rng.Uniform(net.size()));
        } while (!net.harness()->IsAlive(pub));
        net.dht(pub)->Put("churn", key(i), "s", "x", 30 * kSecond);
      }
    }
    if (t >= next_churn) {
      next_churn += churn_interval;
      // Kill one random live node (never node 0, the bootstrap) and add a
      // fresh one that joins through node 0.
      uint32_t victim;
      do {
        victim = 1 + static_cast<uint32_t>(rng.Uniform(net.size() - 1));
      } while (!net.harness()->IsAlive(victim));
      net.harness()->FailNode(victim);
      failed++;
      net.AddNode();
    }
    if (t % (2 * kSecond) == 0 && t > 20 * kSecond) {
      for (int s = 0; s < 3; ++s) {
        uint32_t reader;
        do {
          reader = static_cast<uint32_t>(rng.Uniform(net.size()));
        } while (!net.harness()->IsAlive(reader));
        int i = static_cast<int>(rng.Uniform(kObjects));
        probes++;
        net.dht(reader)->Get("churn", key(i),
                             [&](const Status& st, std::vector<DhtItem> items) {
                               if (st.ok() && !items.empty()) hits++;
                             });
      }
    }
    net.RunFor(kSecond);
  }
  net.RunFor(10 * kSecond);

  Outcome out;
  out.get_success = probes ? static_cast<double>(hits) / probes : 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (net.harness()->IsAlive(i))
      out.dead_ends += net.dht(i)->router()->stats().route_dead_ends;
  }
  out.failed_nodes = failed;
  return out;
}

void Run() {
  bench::Title("E14: churn — get success under live join/fail (no oracle)");
  bench::Note("N=" + std::to_string(kNodes) + " run=" +
              std::to_string(kRunTime / kSecond) +
              "s, objects republished every 10s with 30s lifetime");
  std::vector<int> w = {18, 14, 14, 12};
  bench::Row({"churn interval", "get success%", "dead ends", "failures"}, w);
  struct Case {
    const char* name;
    TimeUs interval;
  };
  for (const Case& c : {Case{"none", 0}, Case{"60s", 60 * kSecond},
                        Case{"20s", 20 * kSecond}, Case{"10s", 10 * kSecond}}) {
    Outcome o = Measure(c.interval, 301);
    bench::Row({c.name, bench::Fmt(100 * o.get_success),
                std::to_string(o.dead_ends), std::to_string(o.failed_nodes)},
               w);
  }
  bench::Note(
      "expected shape: success degrades gracefully as churn accelerates; "
      "most misses come from objects whose owner died inside a republish "
      "window, not from routing failures (dead ends stay low).");
}

}  // namespace
}  // namespace pier

int main() {
  pier::Run();
  return 0;
}
