// Experiment E14 — §3.2.2 churn: lookup success under node arrival and
// departure, with the routing protocols' own maintenance doing the repair
// (no oracle reseeding).
//
// Nodes join live through a bootstrap. A churn process kills a random node
// and adds a fresh one every `interval`; publishers keep re-putting a
// working set; readers sample gets. We sweep the churn interval (mean node
// lifetime = N * interval / 2-ish) and report get success rates and routing
// dead-ends.
//
// E14b (appended, self-checking): the churn-hardened QUERY lifecycle. A
// continuous aggregation query's proxy is killed mid-run:
//   * with a successor configured, the executors fail answer routing over,
//     the successor adopts the proxy role, and the client re-attaches — the
//     bench FAILS unless the kill costs at most ~one window of answers
//     (measured against a no-kill control run on the same schedule);
//   * with no successors, the bench FAILS unless every surviving executor
//     reaps the orphaned opgraphs within ~one lease period.
//
// E15 (appended, self-checking): replicated soft state under node kills.
// 200 rows are published once, then repeated snapshot scans straddle one
// node kill per round. With k=3 successor-set replication the handoff
// repair keeps the answer set whole; with k=1 every kill permanently loses
// the victim's partition. The bench FAILS unless the final k=3 round loses
// < 1% of answers, k=1 loses strictly more, and the churn-free runs return
// exactly 200 rows at BOTH factors (the scan-time replica merge must never
// double-count). PIER_BENCH_JSON=<path> additionally writes the E15 metrics
// as JSON (virtual-time deterministic; CI diffs it against the committed
// BENCH_churn.json).
//
// PIER_BENCH_SMOKE=1 shrinks the E14 sweep for CI; E14b and E15 always run
// whole (they ARE the regression gates).

#include <cstdio>
#include <cstdlib>
#include <set>

#include "bench/bench_common.h"
#include "util/logging.h"
#include "overlay/sim_overlay.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

const bool kSmoke = std::getenv("PIER_BENCH_SMOKE") != nullptr;
constexpr uint32_t kNodes = 40;
const TimeUs kRunTime = (kSmoke ? 120 : 240) * kSecond;
constexpr int kObjects = 60;

struct Outcome {
  double get_success = 0;
  uint64_t dead_ends = 0;
  uint32_t failed_nodes = 0;
};

Outcome Measure(TimeUs churn_interval, uint64_t seed) {
  SimOverlay::Options opts;
  opts.sim.seed = seed;
  opts.seed_routing = false;       // live joins; maintenance must do the work
  opts.settle_time = 40 * kSecond;  // initial convergence
  SimOverlay net(kNodes, opts);

  auto key = [](int i) { return "c" + std::to_string(i); };
  Rng rng(seed + 17);
  uint64_t probes = 0, hits = 0;
  uint32_t failed = 0;

  TimeUs next_churn = churn_interval > 0 ? churn_interval : kRunTime + kSecond;
  for (TimeUs t = 0; t < kRunTime; t += kSecond) {
    // Publishers continuously refresh the working set with short lifetimes,
    // so ownership moves with the ring as churn proceeds.
    if (t % (10 * kSecond) == 0) {
      for (int i = 0; i < kObjects; ++i) {
        uint32_t pub;
        do {
          pub = static_cast<uint32_t>(rng.Uniform(net.size()));
        } while (!net.harness()->IsAlive(pub));
        net.dht(pub)->Put("churn", key(i), "s", "x", 30 * kSecond);
      }
    }
    if (t >= next_churn) {
      next_churn += churn_interval;
      // Kill one random live node (never node 0, the bootstrap) and add a
      // fresh one that joins through node 0.
      uint32_t victim;
      do {
        victim = 1 + static_cast<uint32_t>(rng.Uniform(net.size() - 1));
      } while (!net.harness()->IsAlive(victim));
      net.harness()->FailNode(victim);
      failed++;
      net.AddNode();
    }
    if (t % (2 * kSecond) == 0 && t > 20 * kSecond) {
      for (int s = 0; s < 3; ++s) {
        uint32_t reader;
        do {
          reader = static_cast<uint32_t>(rng.Uniform(net.size()));
        } while (!net.harness()->IsAlive(reader));
        int i = static_cast<int>(rng.Uniform(kObjects));
        probes++;
        net.dht(reader)->Get("churn", key(i),
                             [&](const Status& st, std::vector<DhtItem> items) {
                               if (st.ok() && !items.empty()) hits++;
                             });
      }
    }
    net.RunFor(kSecond);
  }
  net.RunFor(10 * kSecond);

  Outcome out;
  out.get_success = probes ? static_cast<double>(hits) / probes : 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (net.harness()->IsAlive(i))
      out.dead_ends += net.dht(i)->router()->stats().route_dead_ends;
  }
  out.failed_nodes = failed;
  return out;
}

// ---------------------------------------------------------------------------
// E14b: the churn-hardened continuous-query lifecycle (self-checking)
// ---------------------------------------------------------------------------

constexpr uint32_t kFNodes = 16;
constexpr uint32_t kProxy = 2;
constexpr uint32_t kSuccessor = 3;
constexpr TimeUs kWindow = 5 * kSecond;
constexpr TimeUs kLease = 3 * kSecond;
constexpr int kCats = 4;
constexpr int kPreTicks = 100;   // 25s of 4 tuples/s before the kill
constexpr int kPostTicks = 120;  // 30s after it

struct FailoverOutcome {
  uint64_t rows = 0;          // answer rows over the whole run
  TimeUs max_gap = 0;         // longest silence between answers
  uint64_t tail_rows = 0;     // rows in the last 4 full windows (recovery)
};

/// One failover run: a continuous GROUP BY at kProxy with kSuccessor as the
/// failover chain; `kill` fells the proxy mid-stream. Measures answer rows
/// seen by the client (original handle + re-attached handle), the longest
/// answer outage, and the recovered steady-state tail.
FailoverOutcome MeasureFailover(bool kill, uint64_t seed) {
  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.settle_time = 8 * kSecond;
  SimPier net(kFNodes, popts);
  PIER_CHECK(net.catalog()->Register(TableSpec("ev").PartitionBy({"id"})).ok());
  net.RunFor(1 * kSecond);

  int64_t next_id = 0;
  auto publish_one = [&]() {
    int64_t id = next_id++;
    Tuple e("ev");
    e.Append("id", Value::Int64(id));
    e.Append("cat", Value::String("c" + std::to_string(id % kCats)));
    uint32_t pub = static_cast<uint32_t>(id % kFNodes);
    if (!net.harness()->IsAlive(pub)) pub = kSuccessor;
    Status s = net.client(pub)->Publish("ev", e);
    if (!s.ok()) {
      std::fprintf(stderr, "publish failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };

  Sql query("SELECT cat, count(*) AS cnt FROM ev GROUP BY cat TIMEOUT 90s "
            "WINDOW 5s CONTINUOUS");
  query.WithSuccessors({net.dht(kSuccessor)->local_address()})
      .WithLeasePeriod(kLease);
  auto q = net.client(kProxy)->Query(query);
  QueryHandle handle = bench::Check(q, "failover query");
  uint64_t qid = handle.id();
  FailoverOutcome out;
  TimeUs first_answer = 0, last_answer = 0;
  std::map<int64_t, uint64_t> window_rows;
  auto on_row = [&](const Tuple&) {
    out.rows++;
    TimeUs now = net.loop()->now();
    if (first_answer == 0) first_answer = now;
    if (last_answer > 0) out.max_gap = std::max(out.max_gap, now - last_answer);
    last_answer = now;
    window_rows[now / kWindow]++;
  };
  handle.OnTuple(on_row);

  for (int i = 0; i < kPreTicks; ++i) {
    publish_one();
    net.RunFor(250 * kMillisecond);
  }
  if (kill) net.harness()->FailNode(kProxy);

  QueryHandle attached;
  for (int i = 0; i < kPostTicks; ++i) {
    publish_one();
    net.RunFor(250 * kMillisecond);
    // Re-attach through the adopting successor as soon as it owns the query
    // (the backlog it buffered while the query had no client replays here).
    if (kill && !attached.valid() && net.qp(kSuccessor)->stats().adoptions > 0) {
      auto a = net.client(kSuccessor)->Attach(qid);
      attached = bench::Check(a, "re-attach at the adopted proxy");
      attached.OnTuple(on_row);
    }
  }
  net.RunFor(2 * kSecond);
  if (kill && !attached.valid()) {
    std::fprintf(stderr, "FAIL: the successor never adopted the query\n");
    std::exit(1);
  }
  int64_t last_full = net.loop()->now() / kWindow - 1;
  for (int64_t b = last_full - 3; b <= last_full; ++b) {
    auto it = window_rows.find(b);
    if (it != window_rows.end()) out.tail_rows += it->second;
  }
  return out;
}

int RunFailoverCheck() {
  bench::Title("E14b: proxy kill mid-query — failover and orphan reaping");
  int failures = 0;

  // (1) Successor configured. Two claims, measured against a no-kill
  // control on the same schedule:
  //   * the answer OUTAGE across the kill is at most ~one window — i.e. at
  //     most one window's flush is forwarded into the void before failover
  //     re-targets answers (gap between answers <= 2 windows + detection
  //     slack, where the control's gap is ~1 window);
  //   * the stream RECOVERS: the last 4 windows deliver what the control
  //     does (the dead node's rehash partitions re-home with routing
  //     repair; that data-plane loss must not be permanent).
  FailoverOutcome control = MeasureFailover(/*kill=*/false, 404);
  FailoverOutcome survived = MeasureFailover(/*kill=*/true, 404);
  std::vector<int> w = {30, 12};
  bench::Row({"answer rows (control/kill)", std::to_string(control.rows) +
                                                "/" +
                                                std::to_string(survived.rows)},
             w);
  bench::Row({"max answer gap, control", bench::Ms(control.max_gap) + "ms"},
             w);
  bench::Row({"max answer gap, kill", bench::Ms(survived.max_gap) + "ms"}, w);
  bench::Row({"tail rows (control/kill)",
              std::to_string(control.tail_rows) + "/" +
                  std::to_string(survived.tail_rows)},
             w);
  // Losing at most ONE flush round bounds the answer gap by two windows of
  // phase (the round before the kill + the first round after failover) plus
  // proxy-death detection (a lease to starve, the probe to corroborate).
  TimeUs gap_budget = 2 * kWindow + 2 * kLease;
  if (survived.max_gap > gap_budget) {
    std::fprintf(stderr,
                 "FAIL: the proxy kill silenced answers for %.1fms — more "
                 "than one lost flush round (budget: %.1fms)\n",
                 static_cast<double>(survived.max_gap) / kMillisecond,
                 static_cast<double>(gap_budget) / kMillisecond);
    failures++;
  }
  // Row loss: one window's flush is forwarded into the void before failover
  // re-targets; the dead node's rehash partitions add a transient sliver
  // until routing re-homes them. Anything past ~2.5 windows means answers
  // kept draining into the dead proxy.
  double per_window = static_cast<double>(control.tail_rows) / 4.0;
  double lost_windows =
      per_window > 0
          ? static_cast<double>(control.rows -
                                std::min(control.rows, survived.rows)) /
                per_window
          : 0;
  bench::Row({"windows of rows lost", bench::Fmt(lost_windows, 2)}, w);
  if (lost_windows > 2.5) {
    std::fprintf(stderr,
                 "FAIL: proxy kill lost %.2f windows of answer rows "
                 "(budget: ~1 failover window + re-homing sliver)\n",
                 lost_windows);
    failures++;
  }
  if (survived.tail_rows * 10 < control.tail_rows * 9) {
    std::fprintf(stderr,
                 "FAIL: the stream never recovered after failover "
                 "(%llu tail rows vs %llu in the control)\n",
                 static_cast<unsigned long long>(survived.tail_rows),
                 static_cast<unsigned long long>(control.tail_rows));
    failures++;
  }

  // (2) No successors: orphaned opgraphs are reaped by lease expiry.
  {
    SimPier::Options popts;
    popts.sim.seed = 405;
    popts.settle_time = 8 * kSecond;
    SimPier net(kFNodes, popts);
    PIER_CHECK(net.catalog()->Register(TableSpec("ev").PartitionBy({"id"})).ok());
    net.RunFor(1 * kSecond);
    Sql query("SELECT cat, count(*) AS cnt FROM ev GROUP BY cat TIMEOUT 90s "
              "WINDOW 5s CONTINUOUS");
    query.WithLeasePeriod(kLease);
    auto q = net.client(kProxy)->Query(query);
    QueryHandle handle = bench::Check(q, "orphan query");
    int64_t id = 0;
    for (int i = 0; i < 20; ++i) {
      Tuple e("ev");
      e.Append("id", Value::Int64(id++));
      e.Append("cat", Value::String("c0"));
      (void)net.client(static_cast<uint32_t>(id % kFNodes))->Publish("ev", e);
      net.RunFor(500 * kMillisecond);
    }
    net.harness()->FailNode(kProxy);
    // One lease to starve + the check tick and the point-to-point probe.
    net.RunFor(2 * kLease + kLease / 2);
    size_t still_running = 0;
    uint64_t reaps = 0;
    for (uint32_t i = 0; i < net.size(); ++i) {
      if (!net.harness()->IsAlive(i)) continue;
      if (net.qp(i)->executor()->HasQuery(handle.id())) still_running++;
      reaps += net.qp(i)->executor()->stats().orphan_reaps;
    }
    bench::Row({"orphan reaps (no successor)", std::to_string(reaps)}, w);
    bench::Row({"executors still running", std::to_string(still_running)}, w);
    if (still_running > 0) {
      std::fprintf(stderr,
                   "FAIL: %zu executors still run the orphaned query past "
                   "its lease\n",
                   still_running);
      failures++;
    }
  }
  if (failures == 0)
    bench::Note("ok: kill costs <= ~1 window with a successor; orphans are "
                "reaped within ~1 lease period without one");
  return failures;
}

// ---------------------------------------------------------------------------
// E15: replicated soft state — node kills with k-way replication
// ---------------------------------------------------------------------------

constexpr uint32_t kRNodes = 20;
constexpr int kRIds = 200;
constexpr int kRRounds = 3;

struct ReplicationOutcome {
  uint64_t rows_final = 0;      // raw answer rows in the final round
  size_t distinct_final = 0;    // distinct ids in the final round
  size_t distinct_min = 0;      // worst round
  // Replication health, summed across all nodes (dead ones frozen at death).
  uint64_t replica_stores = 0;
  uint64_t promotions = 0;
  uint64_t handoff_pulls = 0;
  uint64_t read_failovers = 0;
  uint64_t suppressed_scan_rows = 0;
  double LossPct() const {
    return 100.0 * (kRIds - static_cast<double>(distinct_final)) / kRIds;
  }
};

/// One E15 run: publish kRIds rows once, then kRRounds snapshot scans, each
/// straddling one node kill (`kill`). Node 0 always proxies and never dies;
/// each round's victim is the highest-index live node, so the kill schedule
/// is identical at every replication factor.
ReplicationOutcome MeasureReplication(int k, bool kill, uint64_t seed) {
  SimPier::Options popts;
  popts.sim.seed = seed;
  popts.seed_routing = true;
  popts.settle_time = 8 * kSecond;
  popts.dht.replication_factor = k;
  SimPier net(kRNodes, popts);
  PIER_CHECK(net.catalog()->Register(TableSpec("ev").PartitionBy({"id"})).ok());
  net.RunFor(1 * kSecond);

  for (int i = 0; i < kRIds; ++i) {
    Tuple e("ev");
    e.Append("id", Value::Int64(i));
    e.Append("src", Value::String("live"));
    Status s = net.client(static_cast<uint32_t>(i) % kRNodes)->Publish("ev", e);
    if (!s.ok()) {
      std::fprintf(stderr, "E15 publish failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  net.RunFor(2 * kSecond);

  ReplicationOutcome out;
  out.distinct_min = kRIds;
  for (int round = 0; round < kRRounds; ++round) {
    auto q = net.client(0)->Query(Sql("SELECT * FROM ev TIMEOUT 6s"));
    QueryHandle handle = bench::Check(q, "E15 snapshot scan");
    uint64_t rows = 0;
    std::set<int64_t> ids;
    handle.OnTuple([&](const Tuple& t) {
      rows++;
      ids.insert(t.Get("id")->int64_unchecked());
    });
    net.RunFor(500 * kMillisecond);
    if (kill) {
      uint32_t victim = net.size() - 1;
      while (victim > 0 && !net.harness()->IsAlive(victim)) victim--;
      net.harness()->FailNode(victim);
    }
    // To the query's end, plus slack for stabilization and handoff repair
    // before the next round scans.
    net.RunFor(8 * kSecond);
    out.rows_final = rows;
    out.distinct_final = ids.size();
    out.distinct_min = std::min(out.distinct_min, ids.size());
  }
  for (uint32_t i = 0; i < net.size(); ++i) {
    Dht::Stats s = net.dht(i)->stats();
    out.replica_stores += s.replica_stores;
    out.promotions += s.promotions;
    out.handoff_pulls += s.handoff_pulls;
    out.read_failovers += s.read_failovers;
    out.suppressed_scan_rows += s.suppressed_scan_rows;
  }
  return out;
}

int RunReplicationCheck() {
  bench::Title("E15: node kills vs k-way replicated soft state");
  bench::Note("N=" + std::to_string(kRNodes) + " ids=" + std::to_string(kRIds) +
              " rounds=" + std::to_string(kRRounds) +
              ", one kill per round straddling a snapshot scan");
  struct Config {
    int k;
    bool kill;
    ReplicationOutcome out;
  };
  std::vector<Config> configs = {{1, false, {}}, {1, true, {}},
                                 {3, false, {}}, {3, true, {}}};
  for (Config& c : configs) c.out = MeasureReplication(c.k, c.kill, 501);

  std::vector<int> w = {10, 8, 12, 14, 12, 10, 12, 10};
  bench::Row({"config", "rows", "distinct", "distinct_min", "loss%",
              "stores", "promotions", "pulls"},
             w);
  for (const Config& c : configs) {
    bench::Row({"k=" + std::to_string(c.k) + (c.kill ? " kill" : ""),
                std::to_string(c.out.rows_final),
                std::to_string(c.out.distinct_final),
                std::to_string(c.out.distinct_min),
                bench::Fmt(c.out.LossPct(), 2),
                std::to_string(c.out.replica_stores),
                std::to_string(c.out.promotions),
                std::to_string(c.out.handoff_pulls)},
               w);
  }

  int failures = 0;
  const ReplicationOutcome& k1 = configs[0].out;
  const ReplicationOutcome& k1_kill = configs[1].out;
  const ReplicationOutcome& k3 = configs[2].out;
  const ReplicationOutcome& k3_kill = configs[3].out;
  if (k3_kill.LossPct() >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: k=3 lost %.2f%% of answers across %d node kills "
                 "(budget: < 1%%)\n",
                 k3_kill.LossPct(), kRRounds);
    failures++;
  }
  if (k1_kill.distinct_final >= k3_kill.distinct_final) {
    std::fprintf(stderr,
                 "FAIL: k=1 kept %zu answers vs %zu at k=3 — replication "
                 "never paid for itself\n",
                 k1_kill.distinct_final, k3_kill.distinct_final);
    failures++;
  }
  for (const ReplicationOutcome* o : {&k1, &k3}) {
    if (o->rows_final != kRIds || o->distinct_min != kRIds) {
      std::fprintf(stderr,
                   "FAIL: a churn-free scan returned %llu rows / %zu distinct "
                   "(want exactly %d — the replica merge double- or "
                   "under-counted)\n",
                   static_cast<unsigned long long>(o->rows_final),
                   o->distinct_min, kRIds);
      failures++;
    }
  }
  if (failures == 0)
    bench::Note("ok: k=3 survives the kills whole, k=1 pays for every one, "
                "and replication never changes a churn-free answer");

  if (const char* path = std::getenv("PIER_BENCH_JSON")) {
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", path);
      return failures + 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"churn_replication\",\n");
    std::fprintf(f, "  \"nodes\": %u, \"ids\": %d, \"rounds\": %d,\n", kRNodes,
                 kRIds, kRRounds);
    std::fprintf(f, "  \"configs\": [\n");
    for (size_t i = 0; i < configs.size(); ++i) {
      const Config& c = configs[i];
      std::fprintf(
          f,
          "    {\"k\": %d, \"kill\": %s, \"rows_final\": %llu, "
          "\"distinct_final\": %zu, \"distinct_min\": %zu, "
          "\"loss_final_pct\": %.2f, \"replica_stores\": %llu, "
          "\"promotions\": %llu, \"handoff_pulls\": %llu, "
          "\"read_failovers\": %llu, \"suppressed_scan_rows\": %llu}%s\n",
          c.k, c.kill ? "true" : "false",
          static_cast<unsigned long long>(c.out.rows_final),
          c.out.distinct_final, c.out.distinct_min, c.out.LossPct(),
          static_cast<unsigned long long>(c.out.replica_stores),
          static_cast<unsigned long long>(c.out.promotions),
          static_cast<unsigned long long>(c.out.handoff_pulls),
          static_cast<unsigned long long>(c.out.read_failovers),
          static_cast<unsigned long long>(c.out.suppressed_scan_rows),
          i + 1 < configs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::Note(std::string("wrote ") + path);
  }
  return failures;
}

int Run() {
  bench::Title("E14: churn — get success under live join/fail (no oracle)");
  bench::Note("N=" + std::to_string(kNodes) + " run=" +
              std::to_string(kRunTime / kSecond) +
              "s, objects republished every 10s with 30s lifetime");
  std::vector<int> w = {18, 14, 14, 12};
  bench::Row({"churn interval", "get success%", "dead ends", "failures"}, w);
  struct Case {
    const char* name;
    TimeUs interval;
  };
  std::vector<Case> cases = {Case{"none", 0}, Case{"60s", 60 * kSecond},
                             Case{"20s", 20 * kSecond},
                             Case{"10s", 10 * kSecond}};
  if (kSmoke) cases = {Case{"none", 0}, Case{"20s", 20 * kSecond}};
  for (const Case& c : cases) {
    Outcome o = Measure(c.interval, 301);
    bench::Row({c.name, bench::Fmt(100 * o.get_success),
                std::to_string(o.dead_ends), std::to_string(o.failed_nodes)},
               w);
  }
  bench::Note(
      "expected shape: success degrades gracefully as churn accelerates; "
      "most misses come from objects whose owner died inside a republish "
      "window, not from routing failures (dead ends stay low).");
  return RunFailoverCheck() + RunReplicationCheck();
}

}  // namespace
}  // namespace pier

int main() { return pier::Run(); }
