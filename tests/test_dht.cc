// DHT batching and wire-path tests: PutBatch grouping/ordering/fallback
// semantics, the byte-identical-when-unbatched guard, and router send
// coalescing.

#include <gtest/gtest.h>

#include <vector>

#include "overlay/dht.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

SimOverlay::Options SeededOptions(uint64_t seed = 42,
                                  TimeUs coalesce_window = 0) {
  SimOverlay::Options opts;
  opts.sim.seed = seed;
  opts.dht.router.coalesce_window_us = coalesce_window;
  opts.seed_routing = true;
  opts.settle_time = 1 * kSecond;
  return opts;
}

DhtPutItem Item(const std::string& ns, const std::string& key,
                const std::string& suffix, const std::string& value) {
  DhtPutItem item;
  item.ns = ns;
  item.key = key;
  item.suffix = suffix;
  item.value = value;
  item.lifetime = 60 * kSecond;
  return item;
}

/// The owner index of (ns, key) under the current routing state.
int OwnerOf(SimOverlay* net, const std::string& ns, const std::string& key) {
  Id target = RoutingId(ns, key);
  for (uint32_t i = 0; i < net->size(); ++i) {
    if (net->dht(i)->router()->protocol()->IsOwner(target))
      return static_cast<int>(i);
  }
  return -1;
}

TEST(DhtBatch, SplitAcrossTwoOwnersDeliversToBoth) {
  SimOverlay net(16, SeededOptions());
  // Two keys with distinct owners plus a same-key pair: the batch must fan
  // out to BOTH destinations, and the same-owner pair must ride one frame.
  std::string key_a = "a0", key_b;
  int owner_a = OwnerOf(&net, "bt", key_a);
  ASSERT_GE(owner_a, 0);
  for (int i = 1; i < 64; ++i) {
    std::string candidate = "b" + std::to_string(i);
    int owner = OwnerOf(&net, "bt", candidate);
    if (owner >= 0 && owner != owner_a) {
      key_b = candidate;
      break;
    }
  }
  ASSERT_FALSE(key_b.empty()) << "no second owner found in 64 candidates";

  Status done_status = Status::Internal("not called");
  net.dht(3)->PutBatch(
      {Item("bt", key_a, "s1", "v1"), Item("bt", key_a, "s2", "v2"),
       Item("bt", key_b, "s3", "v3")},
      [&](const Status& s) { done_status = s; });
  net.RunFor(5 * kSecond);
  EXPECT_TRUE(done_status.ok()) << done_status.ToString();

  // Both owners hold their share.
  std::vector<DhtItem> got_a, got_b;
  net.dht(9)->Get("bt", key_a, [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok());
    got_a = std::move(items);
  });
  net.dht(9)->Get("bt", key_b, [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok());
    got_b = std::move(items);
  });
  net.RunFor(5 * kSecond);
  EXPECT_EQ(got_a.size(), 2u);
  EXPECT_EQ(got_b.size(), 1u);

  // The same-key pair shared a multi-object frame; the lone item fell back
  // to a plain put.
  Dht::Stats stats = net.dht(3)->stats();
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.batched_puts, 2u);
  EXPECT_EQ(stats.batch_msgs, 1u);
}

TEST(DhtBatch, OrderPreservedWithinKey) {
  SimOverlay net(12, SeededOptions(7));
  int owner = OwnerOf(&net, "ord", "k");
  ASSERT_GE(owner, 0);
  std::vector<std::string> arrivals;
  net.dht(owner)->OnNewData("ord",
                            [&](const ObjectName& name, std::string_view) {
                              arrivals.push_back(name.suffix);
                            });
  std::vector<DhtPutItem> items;
  for (int i = 0; i < 8; ++i)
    items.push_back(Item("ord", "k", "s" + std::to_string(i), "v"));
  net.dht(5)->PutBatch(std::move(items));
  net.RunFor(5 * kSecond);
  ASSERT_EQ(arrivals.size(), 8u);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(arrivals[i], "s" + std::to_string(i)) << "batch order broken";
}

TEST(DhtBatch, EmptyBatchCompletesImmediately) {
  SimOverlay net(4, SeededOptions(9));
  bool called = false;
  net.dht(0)->PutBatch({}, [&](const Status& s) {
    EXPECT_TRUE(s.ok());
    called = true;
  });
  EXPECT_TRUE(called);
  EXPECT_EQ(net.dht(0)->stats().puts, 0u);
}

TEST(DhtBatch, SingletonGroupsAreByteIdenticalToPlainPuts) {
  // The acceptance guard: with coalescing off and every destination getting
  // exactly one object, a PutBatch produces the very same wire traffic as
  // the loose Put calls it replaces — byte for byte, message for message.
  SimOverlay::Options opts = SeededOptions(21);

  SimOverlay plain(12, opts);
  SimOverlay batched(12, opts);  // twin sim: same seed, same topology
  std::string key_a = "a0", key_b;
  int owner_a = OwnerOf(&plain, "tw", key_a);
  ASSERT_GE(owner_a, 0);
  for (int i = 1; i < 64 && key_b.empty(); ++i) {
    std::string candidate = "b" + std::to_string(i);
    int owner = OwnerOf(&plain, "tw", candidate);
    if (owner >= 0 && owner != owner_a) key_b = candidate;
  }
  ASSERT_FALSE(key_b.empty());

  plain.harness()->ResetStats();
  batched.harness()->ResetStats();
  plain.dht(2)->Put("tw", key_a, "s", "value-a", 60 * kSecond);
  plain.dht(2)->Put("tw", key_b, "s", "value-b", 60 * kSecond);
  batched.dht(2)->PutBatch(
      {Item("tw", key_a, "s", "value-a"), Item("tw", key_b, "s", "value-b")});
  plain.RunFor(10 * kSecond);
  batched.RunFor(10 * kSecond);

  EXPECT_EQ(plain.harness()->total_msgs(), batched.harness()->total_msgs());
  EXPECT_EQ(plain.harness()->total_bytes(), batched.harness()->total_bytes());
  EXPECT_EQ(batched.dht(2)->stats().batched_puts, 0u)
      << "singleton groups must not use the batch frame";
}

TEST(DhtBatch, PartialFailureReportsPerGroupStatus) {
  SimOverlay net(16, SeededOptions(77));
  // Two keys with distinct owners; then the second owner dies, so the batch
  // PARTIALLY fails — the report must say exactly which items were dropped,
  // not collapse everything into the first error.
  std::string key_a = "a0", key_b;
  int owner_a = OwnerOf(&net, "pf", key_a);
  ASSERT_GE(owner_a, 0);
  int owner_b = -1;
  for (int i = 1; i < 64 && key_b.empty(); ++i) {
    std::string candidate = "b" + std::to_string(i);
    int owner = OwnerOf(&net, "pf", candidate);
    if (owner > 0 && owner != owner_a) {
      key_b = candidate;
      owner_b = owner;
    }
  }
  ASSERT_FALSE(key_b.empty()) << "no second owner found in 64 candidates";
  uint32_t sender = 0;
  while (static_cast<int>(sender) == owner_a ||
         static_cast<int>(sender) == owner_b)
    sender++;

  net.harness()->FailNode(static_cast<uint32_t>(owner_b));

  bool reported = false;
  Status first = Status::Ok();
  std::vector<Dht::PutGroupStatus> groups;
  net.dht(sender)->PutBatch(
      {Item("pf", key_a, "s1", "v1"), Item("pf", key_b, "s2", "v2"),
       Item("pf", key_a, "s3", "v3")},
      [&](const Status& s, std::vector<Dht::PutGroupStatus> g) {
        reported = true;
        first = s;
        groups = std::move(g);
      });
  // Give the transport time to exhaust its retries against the dead owner.
  net.RunFor(60 * kSecond);

  ASSERT_TRUE(reported);
  EXPECT_FALSE(first.ok()) << "the legacy first-error contract still holds";
  ASSERT_EQ(groups.size(), 2u);
  size_t ok_items = 0, failed_items = 0;
  for (const Dht::PutGroupStatus& g : groups) {
    for (size_t idx : g.indices) {
      if (g.status.ok()) {
        ok_items++;
        EXPECT_TRUE(idx == 0 || idx == 2) << "ok group must be the a-items";
      } else {
        failed_items++;
        EXPECT_EQ(idx, 1u) << "dropped group must be the b-item";
      }
    }
  }
  EXPECT_EQ(ok_items, 2u);
  EXPECT_EQ(failed_items, 1u);

  // The live owner's items made it regardless of the dead group.
  std::vector<DhtItem> got_a;
  net.dht(sender)->Get("pf", key_a,
                       [&](const Status& s, std::vector<DhtItem> items) {
                         ASSERT_TRUE(s.ok());
                         got_a = std::move(items);
                       });
  net.RunFor(5 * kSecond);
  EXPECT_EQ(got_a.size(), 2u);
}

TEST(DhtCoalesce, MergesSendsAndUnframesTransparently) {
  SimOverlay net(12, SeededOptions(33, /*coalesce_window=*/1000));
  // A burst of puts within one coalescing window: same-destination wire
  // messages merge into bundles, yet every object lands normally.
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    net.dht(4)->Put("cl", "k" + std::to_string(i % 4), "s" + std::to_string(i),
                    "v", 60 * kSecond, [&](const Status& s) {
                      EXPECT_TRUE(s.ok()) << s.ToString();
                      done++;
                    });
  }
  net.RunFor(10 * kSecond);
  EXPECT_EQ(done, 20);

  uint64_t stored = 0, coalesced = 0, bundles = 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    stored += net.dht(i)->stats().store_requests;
    coalesced += net.dht(i)->router()->stats().coalesced_msgs;
    bundles += net.dht(i)->router()->stats().bundles_sent;
  }
  EXPECT_EQ(stored, 20u);
  EXPECT_GT(coalesced, 0u) << "the burst never shared a bundle";
  EXPECT_GT(bundles, 0u);
  EXPECT_EQ(net.dht(4)->stats().coalesced_msgs,
            net.dht(4)->router()->stats().coalesced_msgs)
      << "Dht::Stats mirrors the router counter";
}

TEST(DhtCoalesce, DisabledByDefault) {
  SimOverlay net(8, SeededOptions(11));
  for (int i = 0; i < 10; ++i)
    net.dht(0)->Put("nc", "k" + std::to_string(i), "s", "v", 60 * kSecond);
  net.RunFor(5 * kSecond);
  for (uint32_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.dht(i)->router()->stats().coalesced_msgs, 0u);
    EXPECT_EQ(net.dht(i)->router()->stats().bundles_sent, 0u);
  }
}

}  // namespace
}  // namespace pier
