// First-class observability: MetricsRegistry semantics (labels, histogram
// buckets, snapshot consistency under concurrent writers), the Prometheus
// scrape endpoint round-trip over the VRI's framed TCP, sys.metrics
// publish/query through PierClient, per-query cost-meter aggregation across a
// 2-node simulation, and the repair-tick backoff knob.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/node_metrics.h"
#include "obs/scrape.h"
#include "qp/sim_pier.h"

namespace pier {
namespace {

SimPier::Options PierOptions(uint64_t seed) {
  SimPier::Options opts;
  opts.sim.seed = seed;
  opts.seed_routing = true;
  opts.settle_time = 8 * kSecond;
  return opts;
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SameNameAndLabelsSameInstrument) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("pier_x_total", {{"op", "put"}});
  Counter* b = reg.GetCounter("pier_x_total", {{"op", "put"}});
  Counter* c = reg.GetCounter("pier_x_total", {{"op", "get"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Inc(3);
  c->Inc();
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(c->value(), 1u);
  EXPECT_EQ(reg.num_families(), 1u);
  EXPECT_EQ(reg.num_series("pier_x_total"), 2u);
}

TEST(MetricsRegistry, KindMismatchYieldsSinkNotCrash) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("pier_y_total");
  ASSERT_NE(a, nullptr);
  // Re-registering the family as a gauge must not corrupt it or return null.
  Gauge* g = reg.GetGauge("pier_y_total");
  ASSERT_NE(g, nullptr);
  g->Set(42);  // lands in the sink, harmless
  a->Inc();
  std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].value, 1.0);
}

TEST(MetricsRegistry, GaugeMovesBothWays) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("pier_depth");
  g->Set(5.0);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
}

TEST(MetricsRegistry, HistogramBucketsAreCumulativeInSamples) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("pier_lat_us", {10, 100, 1000});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  h->Observe(5000);  // +Inf bucket
  std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const MetricSample& s = snap[0];
  EXPECT_EQ(s.kind, MetricKind::kHistogram);
  ASSERT_EQ(s.buckets.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(s.buckets[0].second, 1u);
  EXPECT_EQ(s.buckets[1].second, 2u);
  EXPECT_EQ(s.buckets[2].second, 3u);
  EXPECT_EQ(s.buckets[3].second, 4u);  // cumulative: everything
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 5555.0);
}

TEST(MetricsRegistry, SeriesCapCollapsesIntoDroppedCounter) {
  MetricsRegistry reg;
  reg.set_max_series_per_family(2);
  Counter* a = reg.GetCounter("pier_q_total", {{"qid", "1"}});
  Counter* b = reg.GetCounter("pier_q_total", {{"qid", "2"}});
  Counter* over = reg.GetCounter("pier_q_total", {{"qid", "3"}});
  EXPECT_NE(a, b);
  over->Inc();  // sink; must not crash or mint a third series
  EXPECT_EQ(reg.num_series("pier_q_total"), 2u);
  EXPECT_GE(reg.dropped_series(), 1u);
  // The synthetic drop counter appears in the snapshot.
  bool found = false;
  for (const MetricSample& s : reg.Snapshot())
    if (s.name == "pier_metrics_dropped_series_total") found = true;
  EXPECT_TRUE(found);
}

TEST(MetricsRegistry, RemoveRetiresSeriesButPointersStayValid) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("pier_r_total", {{"qid", "9"}});
  a->Inc();
  EXPECT_TRUE(reg.Remove("pier_r_total", {{"qid", "9"}}));
  EXPECT_FALSE(reg.Remove("pier_r_total", {{"qid", "9"}}));  // already gone
  a->Inc();  // writes land somewhere harmless
  for (const MetricSample& s : reg.Snapshot())
    EXPECT_NE(s.name, "pier_r_total");
}

TEST(MetricsRegistry, CallbackFamiliesReadLiveValues) {
  MetricsRegistry reg;
  uint64_t live = 7;
  reg.AddCounterFn("pier_live_total", {},
                   [&live] { return static_cast<double>(live); });
  auto value = [&reg]() -> double {
    for (const MetricSample& s : reg.Snapshot())
      if (s.name == "pier_live_total") return s.value;
    return -1;
  };
  EXPECT_EQ(value(), 7.0);
  live = 19;
  EXPECT_EQ(value(), 19.0);
}

TEST(MetricsRegistry, RenderTextExposesHelpTypeAndEscaping) {
  MetricsRegistry reg;
  reg.GetCounter("pier_t_total", {{"tag", "a\"b\\c\nd"}}, "counts things")
      ->Inc(2);
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("# HELP pier_t_total counts things"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pier_t_total counter"), std::string::npos);
  EXPECT_NE(text.find("tag=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  EXPECT_NE(text.find("} 2\n"), std::string::npos);
}

TEST(MetricsRegistry, SnapshotConsistentUnderConcurrentUpdates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("pier_cc_total");
  Histogram* h = reg.GetHistogram("pier_ch_us", {1, 10, 100});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Observe(static_cast<double>(i % 200));
      }
    });
  }
  // Concurrent snapshots must never see a histogram whose cumulative bucket
  // total is below its count (count is read first by design).
  for (int i = 0; i < 50; ++i) {
    for (const MetricSample& s : reg.Snapshot()) {
      if (s.name != "pier_ch_us") continue;
      ASSERT_FALSE(s.buckets.empty());
      EXPECT_GE(s.buckets.back().second, s.count);
    }
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->count(), uint64_t{kThreads} * kPerThread);
  std::vector<uint64_t> per_bucket = h->bucket_counts();
  uint64_t total = 0;
  for (uint64_t b : per_bucket) total += b;
  EXPECT_EQ(total, uint64_t{kThreads} * kPerThread);
}

// ---------------------------------------------------------------------------
// Scrape endpoint round-trip (VRI framed TCP, in simulation)
// ---------------------------------------------------------------------------

TEST(MetricsEndpoint, ScrapeRoundTripInSimulation) {
  SimPier::Options opts = PierOptions(101);
  opts.metrics_port = 9100;
  SimPier net(4, opts);
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("ev").PartitionBy({"k"}))
                  .ok());
  for (int i = 0; i < 8; ++i) {
    Tuple t("ev");
    t.Append("k", Value::Int64(i));
    ASSERT_TRUE(net.client(0)->Publish("ev", t).ok());
  }
  net.RunFor(2 * kSecond);

  // Scrape node 1's endpoint from node 0's runtime.
  std::string body;
  bool done = false;
  ScrapeMetrics(net.qp(0)->vri(), net.metrics_address(1),
                [&](std::string b) {
                  body = std::move(b);
                  done = true;
                });
  net.RunFor(2 * kSecond);
  ASSERT_TRUE(done) << "scrape never completed";
  ASSERT_FALSE(body.empty());
  // The response is the registry's own rendering: families from several
  // subsystems, help/type headers, and values matching the live Stats.
  EXPECT_NE(body.find("# TYPE pier_dht_puts_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("pier_net_msgs_sent_total"), std::string::npos);
  EXPECT_NE(body.find("pier_repl_repair_period_us"), std::string::npos);
  std::string rendered = net.metrics(1)->RenderText();
  std::string want = "pier_dht_store_requests_total " +
                     std::to_string(net.dht(1)->stats().store_requests);
  EXPECT_NE(rendered.find(want), std::string::npos);
  // Endpoint bookkeeping on the scraped node.
  auto* node =
      static_cast<SimPier::PierNode*>(net.harness()->program(1));
  ASSERT_NE(node->endpoint(), nullptr);
  EXPECT_EQ(node->endpoint()->stats().scrapes, 1u);
}

// ---------------------------------------------------------------------------
// sys.metrics publish / query through PIER itself
// ---------------------------------------------------------------------------

TEST(SysMetrics, PublishedSnapshotIsQueryable) {
  SimPier net(4, PierOptions(202));
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("ev").PartitionBy({"k"}))
                  .ok());
  for (int i = 0; i < 16; ++i) {
    Tuple t("ev");
    t.Append("k", Value::Int64(i));
    ASSERT_TRUE(net.client(0)->Publish("ev", t).ok());
  }
  net.RunFor(kSecond);

  std::vector<MetricSample> published;
  ASSERT_TRUE(net.client(0)->PublishMetrics(&published).ok());
  ASSERT_FALSE(published.empty());
  net.RunFor(2 * kSecond);  // let the puts land

  auto q = net.client(1)->Query(
      Sql("SELECT * FROM sys.metrics TIMEOUT 6s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  ASSERT_FALSE(rows.empty());

  // Fold: newest row per (metric, labels, origin).
  std::map<std::string, std::pair<int64_t, double>> newest;
  for (const Tuple& r : rows) {
    const Value* name = r.Get("metric");
    const Value* labels = r.Get("labels");
    const Value* origin = r.Get("origin");
    const Value* value = r.Get("value");
    const Value* at = r.Get("updated_us");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(value, nullptr);
    ASSERT_NE(at, nullptr);
    std::string key = std::string(*name->AsString()) + "|" +
                      std::string(*labels->AsString()) + "|" +
                      std::string(*origin->AsString());
    int64_t ts = *at->AsInt64();
    auto it = newest.find(key);
    if (it == newest.end() || ts > it->second.first)
      newest[key] = {ts, *value->AsDouble()};
  }
  // Every published sample must be queryable with the value the snapshot
  // carried (same origin, so the keys are unambiguous).
  NetAddress self = net.dht(0)->local_address();
  std::string origin =
      std::to_string(self.host) + ":" + std::to_string(self.port);
  size_t checked = 0;
  for (const MetricSample& s : published) {
    if (s.kind == MetricKind::kHistogram) continue;  // value rides count/sum
    auto it = newest.find(s.name + "|" + RenderLabels(s.labels) + "|" + origin);
    ASSERT_NE(it, newest.end()) << "missing sys.metrics row for " << s.name;
    EXPECT_DOUBLE_EQ(it->second.second, s.value) << s.name;
    checked++;
  }
  EXPECT_GT(checked, 10u);
}

TEST(SysMetrics, PeriodicPublisherNeedsRegistryAndStops) {
  SimPier net(2, PierOptions(203));
  // SimPier wires a registry automatically; a client without one refuses.
  PierClient bare(net.qp(1), net.catalog());
  EXPECT_FALSE(bare.PublishMetrics().ok());
  EXPECT_FALSE(bare.StartMetricsPublish().ok());

  ASSERT_TRUE(net.client(0)->StartMetricsPublish(kSecond).ok());
  net.RunFor(3 * kSecond + 500 * kMillisecond);
  net.client(0)->StopMetricsPublish();
  uint64_t puts_after_stop = net.dht(0)->stats().puts;
  net.RunFor(3 * kSecond);
  // No further sys.metrics publishes once stopped (no other put source
  // is active in this idle network).
  EXPECT_EQ(net.dht(0)->stats().puts, puts_after_stop);
}

// ---------------------------------------------------------------------------
// Per-query cost metering, aggregated at the proxy (2-node sim)
// ---------------------------------------------------------------------------

TEST(QueryMetering, ExplainAnalyzeAggregatesAcrossNodes) {
  SimPier net(2, PierOptions(303));
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("ev").PartitionBy({"k"}))
                  .ok());
  for (int i = 0; i < 24; ++i) {
    Tuple t("ev");
    t.Append("k", Value::Int64(i));
    t.Append("v", Value::Int64(i * 10));
    ASSERT_TRUE(net.client(0)->Publish("ev", t).ok());
  }
  net.RunFor(2 * kSecond);

  auto q = net.client(0)->Query(Sql("SELECT * FROM ev TIMEOUT 6s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  EXPECT_EQ(rows.size(), 24u);

  auto ea = net.client(0)->ExplainAnalyze(*q);
  ASSERT_TRUE(ea.ok()) << ea.status().ToString();
  EXPECT_TRUE(ea->final) << "costs must be final after completion";
  ASSERT_FALSE(ea->actual.ops.empty());

  // The answer pseudo-op counted every delivered tuple, local and remote.
  const QueryCostOp* answers = nullptr;
  uint64_t scan_out = 0;
  uint32_t scan_nodes = 0;
  for (const QueryCostOp& op : ea->actual.ops) {
    if (op.graph_id == QueryMeter::kAnswerSlot.first &&
        op.op_id == QueryMeter::kAnswerSlot.second) {
      answers = &op;
    } else if (op.cost.tuples_out > 0) {
      scan_out += op.cost.tuples_out;
      scan_nodes = std::max(scan_nodes, op.nodes);
    }
  }
  ASSERT_NE(answers, nullptr);
  EXPECT_EQ(answers->cost.tuples_out, 24u);
  EXPECT_GE(scan_out, 24u) << "operator meters saw every produced tuple";
  EXPECT_EQ(scan_nodes, 2u) << "both nodes' meters reached the proxy";
  // Tuples from the remote node crossed the wire and were metered as such.
  EXPECT_GT(answers->cost.msgs, 0u);
  EXPECT_GT(answers->cost.bytes, 0u);
  EXPECT_LT(answers->cost.msgs, 24u) << "local deliveries are not wire msgs";

  // Handle-level totals mirror the report.
  EXPECT_EQ(q->stats().op_msgs, ea->actual.total.msgs);
  EXPECT_EQ(q->stats().op_bytes, ea->actual.total.bytes);
  EXPECT_GT(q->stats().op_tuples, 0u);

  // The rendering names both sides.
  std::string text = ea->ToString();
  EXPECT_NE(text.find("answers:"), std::string::npos);
  EXPECT_NE(text.find("actual"), std::string::npos);
}

TEST(QueryMetering, MeteringOffMeansEmptyReport) {
  SimPier net(2, PierOptions(304));
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("ev").PartitionBy({"k"}))
                  .ok());
  Tuple t("ev");
  t.Append("k", Value::Int64(1));
  ASSERT_TRUE(net.client(0)->Publish("ev", t).ok());
  net.RunFor(kSecond);
  for (uint32_t i = 0; i < net.size(); ++i)
    net.qp(i)->executor()->set_metering(false);

  auto q = net.client(0)->Query(Sql("SELECT * FROM ev TIMEOUT 4s"));
  ASSERT_TRUE(q.ok());
  std::vector<Tuple> rows = q->Collect();
  EXPECT_EQ(rows.size(), 1u) << "answers still flow with metering off";
  auto ea = net.client(0)->ExplainAnalyze(*q);
  ASSERT_TRUE(ea.ok());
  EXPECT_EQ(ea->actual.total.msgs, 0u);
  EXPECT_EQ(ea->actual.total.tuples_out, 0u);
}

// ---------------------------------------------------------------------------
// Repair-tick cadence knob (satellite: replication known-hole)
// ---------------------------------------------------------------------------

TEST(RepairBackoff, QuietRingStretchesCadenceAndChangeResets) {
  SimPier::Options opts = PierOptions(404);
  opts.dht.replication_factor = 2;
  opts.dht.repl_repair_period = kSecond;
  opts.dht.repl_repair_backoff_max = 8 * kSecond;
  SimPier net(4, opts);

  // The settle window already ran quiet ticks; keep the ring idle longer.
  net.RunFor(20 * kSecond);
  ReplicationManager* repl = net.dht(0)->replication();
  EXPECT_GT(repl->stats().repair_ticks, 0u);
  EXPECT_GT(repl->stats().idle_repair_ticks, 0u);
  EXPECT_TRUE(repl->repair_backed_off());
  EXPECT_EQ(repl->current_repair_period(), 8 * kSecond) << "capped at max";

  // With backoff, an idle node ticks far less than once per base period.
  uint64_t ticks_before = repl->stats().repair_ticks;
  net.RunFor(16 * kSecond);
  uint64_t quiet_ticks = repl->stats().repair_ticks - ticks_before;
  EXPECT_LE(quiet_ticks, 3u);

  // A ring change (kill a neighbor) snaps the cadence back to base once the
  // protocol notices the membership move.
  net.harness()->FailNode(2);
  net.RunFor(30 * kSecond);
  bool any_reset = false;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (i == 2 || !net.harness()->IsAlive(i)) continue;
    if (net.dht(i)->replication()->stats().idle_repair_ticks <
        net.dht(i)->replication()->stats().repair_ticks)
      any_reset = true;
  }
  EXPECT_TRUE(any_reset) << "some live node saw a non-idle repair tick";
}

TEST(RepairBackoff, DisabledByDefaultKeepsFixedCadence) {
  SimPier::Options opts = PierOptions(405);
  opts.dht.replication_factor = 2;
  SimPier net(2, opts);
  net.RunFor(10 * kSecond);
  ReplicationManager* repl = net.dht(0)->replication();
  EXPECT_FALSE(repl->repair_backed_off());
  EXPECT_EQ(repl->current_repair_period(), kSecond);
}

}  // namespace
}  // namespace pier
