// Smoke tests: the DHT substrate end-to-end in simulation.

#include <gtest/gtest.h>

#include "overlay/dht.h"
#include "overlay/distribution_tree.h"
#include "overlay/pht.h"
#include "overlay/sim_overlay.h"

namespace pier {
namespace {

SimOverlay::Options SeededOptions(ProtocolKind kind = ProtocolKind::kChord,
                                  uint64_t seed = 42) {
  SimOverlay::Options opts;
  opts.sim.seed = seed;
  opts.dht.router.protocol = kind;
  opts.seed_routing = true;
  opts.settle_time = 1 * kSecond;
  return opts;
}

TEST(OverlaySmoke, PutThenGetAcrossNodes) {
  SimOverlay net(16, SeededOptions());
  bool got = false;
  net.dht(3)->Put("tbl", "k1", "s1", "hello", 60 * kSecond);
  net.RunFor(2 * kSecond);
  net.dht(9)->Get("tbl", "k1", [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].suffix, "s1");
    EXPECT_EQ(items[0].value, "hello");
    got = true;
  });
  net.RunFor(5 * kSecond);
  EXPECT_TRUE(got);
}

TEST(OverlaySmoke, PutGetOnPrefixProtocol) {
  SimOverlay net(16, SeededOptions(ProtocolKind::kPrefix));
  bool got = false;
  net.dht(1)->Put("tbl", "kX", "s", "prefix-routed", 60 * kSecond);
  net.RunFor(2 * kSecond);
  net.dht(14)->Get("tbl", "kX", [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].value, "prefix-routed");
    got = true;
  });
  net.RunFor(5 * kSecond);
  EXPECT_TRUE(got);
}

TEST(OverlaySmoke, SendDeliversToOwnerWithNewData) {
  SimOverlay net(20, SeededOptions());
  // Find who owns ("t","key") and watch newData fire there.
  int delivered_at = -1;
  for (uint32_t i = 0; i < net.size(); ++i) {
    net.dht(i)->OnNewData("t", [&, i](const ObjectName& name, std::string_view v) {
      if (name.key == "key" && v == "payload") delivered_at = static_cast<int>(i);
    });
  }
  net.dht(5)->Send("t", "key", "sfx", "payload", 30 * kSecond);
  net.RunFor(3 * kSecond);
  ASSERT_GE(delivered_at, 0);
  // The receiving node must actually be the owner of the routing id.
  Id target = RoutingId("t", "key");
  EXPECT_TRUE(net.dht(delivered_at)->router()->protocol()->IsOwner(target));
}

TEST(OverlaySmoke, LiveJoinConvergesWithoutSeeding) {
  SimOverlay::Options opts;
  opts.sim.seed = 7;
  opts.seed_routing = false;
  opts.settle_time = 30 * kSecond;  // join + stabilize traffic
  SimOverlay net(12, opts);

  bool got = false;
  net.dht(2)->Put("tbl", "a", "s", "joined", 120 * kSecond);
  net.RunFor(5 * kSecond);
  net.dht(11)->Get("tbl", "a", [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].value, "joined");
    got = true;
  });
  net.RunFor(10 * kSecond);
  EXPECT_TRUE(got);
}

TEST(OverlaySmoke, SoftStateExpiresWithoutRenewal) {
  SimOverlay net(8, SeededOptions());
  net.dht(0)->Put("tbl", "k", "s", "ephemeral", 3 * kSecond);
  net.RunFor(1 * kSecond);
  bool seen_alive = false, seen_dead = false;
  net.dht(1)->Get("tbl", "k", [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok());
    seen_alive = items.size() == 1;
  });
  net.RunFor(5 * kSecond);  // well past the 3s lifetime
  net.dht(1)->Get("tbl", "k", [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok());
    seen_dead = items.empty();
  });
  net.RunFor(5 * kSecond);
  EXPECT_TRUE(seen_alive);
  EXPECT_TRUE(seen_dead);
}

TEST(OverlaySmoke, RenewExtendsLifetime) {
  SimOverlay net(8, SeededOptions());
  net.dht(0)->Put("tbl", "k", "s", "kept", 4 * kSecond);
  net.RunFor(2 * kSecond);
  Status renew_status = Status::Internal("not called");
  net.dht(0)->Renew("tbl", "k", "s", 60 * kSecond,
                    [&](const Status& s) { renew_status = s; });
  net.RunFor(8 * kSecond);  // past the original lifetime
  EXPECT_TRUE(renew_status.ok()) << renew_status.ToString();
  bool still_there = false;
  net.dht(3)->Get("tbl", "k", [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok());
    still_there = items.size() == 1;
  });
  net.RunFor(5 * kSecond);
  EXPECT_TRUE(still_there);
}

TEST(OverlaySmoke, RenewFailsForUnknownObject) {
  SimOverlay net(8, SeededOptions());
  Status s = Status::Ok();
  bool called = false;
  net.dht(0)->Renew("tbl", "nope", "s", 60 * kSecond, [&](const Status& st) {
    s = st;
    called = true;
  });
  net.RunFor(5 * kSecond);
  EXPECT_TRUE(called);
  EXPECT_EQ(s.code(), StatusCode::kNotFound) << s.ToString();
}

TEST(OverlaySmoke, BroadcastReachesEveryNode) {
  SimOverlay net(24, SeededOptions());
  std::vector<std::unique_ptr<DistributionTree>> trees;
  std::vector<int> hits(net.size(), 0);
  for (uint32_t i = 0; i < net.size(); ++i) {
    auto tree = std::make_unique<DistributionTree>(net.dht(i));
    tree->set_broadcast_handler([&hits, i](std::string_view) { hits[i]++; });
    trees.push_back(std::move(tree));
  }
  net.RunFor(10 * kSecond);  // allow the tree to form (joins are periodic)
  trees[4]->Broadcast("opgraph-blob");
  net.RunFor(10 * kSecond);
  int reached = 0;
  for (int h : hits) reached += (h > 0);
  EXPECT_EQ(reached, static_cast<int>(net.size()));
  for (int h : hits) EXPECT_LE(h, 1);  // exactly-once per node
}

TEST(OverlaySmoke, PhtInsertLookupRange) {
  SimOverlay net(16, SeededOptions());
  Pht::Options popts;
  popts.key_bits = 16;
  popts.bucket_size = 4;
  Pht pht(net.dht(0), popts);
  int done = 0;
  for (uint64_t k : {100u, 200u, 300u, 400u, 500u, 600u, 700u, 800u, 900u}) {
    pht.Insert(k, "v" + std::to_string(k), [&](const Status& s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      done++;
    });
    net.RunFor(3 * kSecond);  // sequential inserts: splits settle in between
  }
  EXPECT_EQ(done, 9);

  // Point lookup from another node's PHT view.
  Pht pht2(net.dht(7), popts);
  bool found = false;
  pht2.LookupKey(500, [&](const Status& s, std::vector<PhtItem> items) {
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].value, "v500");
    found = true;
  });
  net.RunFor(5 * kSecond);
  EXPECT_TRUE(found);

  bool ranged = false;
  pht2.RangeQuery(250, 650, [&](const Status& s, std::vector<PhtItem> items) {
    ASSERT_TRUE(s.ok());
    std::vector<uint64_t> keys;
    for (auto& item : items) keys.push_back(item.key);
    EXPECT_EQ(keys, (std::vector<uint64_t>{300, 400, 500, 600}));
    ranged = true;
  });
  net.RunFor(5 * kSecond);
  EXPECT_TRUE(ranged);
}

TEST(OverlaySmoke, NodeFailureLosesDataAndRenewDetectsIt) {
  SimOverlay net(16, SeededOptions());
  net.dht(1)->Put("tbl", "vk", "s", "victim", 300 * kSecond);
  net.RunFor(2 * kSecond);
  // Find the owner and kill it.
  Id target = RoutingId("tbl", "vk");
  int owner = -1;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (net.dht(i)->router()->protocol()->IsOwner(target)) owner = i;
  }
  ASSERT_GE(owner, 0);
  net.harness()->FailNode(owner);
  net.SeedAll();  // repair routing instantly (churn handling tested elsewhere)
  net.RunFor(2 * kSecond);

  Status renew_status = Status::Ok();
  bool called = false;
  net.dht(1)->Renew("tbl", "vk", "s", 60 * kSecond, [&](const Status& st) {
    renew_status = st;
    called = true;
  });
  net.RunFor(10 * kSecond);
  EXPECT_TRUE(called);
  EXPECT_FALSE(renew_status.ok());  // new owner doesn't know the object
}

}  // namespace
}  // namespace pier
