// Tests for the client façade: catalog registration semantics, catalog-driven
// index fan-out on Publish (primary + secondary + PHT range), the
// unknown-table submission error, and QueryHandle streaming/collect/cancel.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "qp/sim_pier.h"

namespace pier {
namespace {

SimPier::Options PierOptions(uint64_t seed) {
  SimPier::Options opts;
  opts.sim.seed = seed;
  opts.seed_routing = true;
  opts.settle_time = 8 * kSecond;
  return opts;
}

// ---------------------------------------------------------------------------
// Catalog (no network needed)
// ---------------------------------------------------------------------------

TEST(Catalog, RegisterIsIdempotentButConflictsAreErrors) {
  Catalog cat;
  TableSpec spec =
      TableSpec("emp").PartitionBy({"id"}).SecondaryIndex("dept");
  ASSERT_TRUE(cat.Register(spec).ok());
  EXPECT_TRUE(cat.Register(spec).ok()) << "identical re-registration is a no-op";

  TableSpec conflicting = TableSpec("emp").PartitionBy({"dept"});
  Status s = cat.Register(conflicting);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);

  EXPECT_FALSE(cat.Register(TableSpec("")).ok()) << "name required";
  EXPECT_FALSE(cat.Register(TableSpec("x")).ok())
      << "non-local tables need partition attrs";
  EXPECT_TRUE(cat.Register(TableSpec("logs").LocalOnly()).ok());
  EXPECT_FALSE(
      cat.Register(TableSpec("trc").LocalOnly().RangeIndex("ts", 10)).ok())
      << "local-only tuples never reach the DHT: indexes cannot be populated";
  EXPECT_FALSE(
      cat.Register(TableSpec("trc").LocalOnly().SecondaryIndex("id")).ok());
}

TEST(Catalog, KnowsTablesAndTheirIndexTables) {
  Catalog cat;
  ASSERT_TRUE(cat.Register(TableSpec("emp")
                               .PartitionBy({"id"})
                               .SecondaryIndex("dept")
                               .RangeIndex("age", 8))
                  .ok());
  EXPECT_TRUE(cat.Knows("emp"));
  EXPECT_TRUE(cat.Knows("emp_by_dept")) << "default secondary index name";
  EXPECT_TRUE(cat.Knows("emp_rng_age")) << "default range index name";
  EXPECT_FALSE(cat.Knows("mystery"));
  // Role distinction: secondary-index tables hold ordinary tuples and are
  // scannable; PHT range tables hold trie nodes and are only valid as
  // range-dissemination targets.
  EXPECT_TRUE(cat.KnowsRelation("emp_by_dept"));
  EXPECT_FALSE(cat.KnowsRelation("emp_rng_age"));
  EXPECT_TRUE(cat.KnowsRangeTable("emp_rng_age"));
  EXPECT_FALSE(cat.KnowsRangeTable("emp_by_dept"));

  // The SQL hints are derived: base table plus its secondary index table.
  auto hints = cat.TableHints();
  ASSERT_EQ(hints.count("emp"), 1u);
  EXPECT_EQ(hints["emp"].partition_attrs, std::vector<std::string>{"id"});
  ASSERT_EQ(hints.count("emp_by_dept"), 1u);
  EXPECT_EQ(hints["emp_by_dept"].partition_attrs,
            std::vector<std::string>{"dept"});
}

// ---------------------------------------------------------------------------
// Publish fan-out
// ---------------------------------------------------------------------------

TEST(PierClient, PublishRequiresACatalogEntry) {
  SimPier net(2, PierOptions(3));
  Tuple t("ghost");
  t.Append("k", Value::Int64(1));
  Status s = net.client(0)->Publish("ghost", t);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(PierClient, SecondaryIndexFanOutAndLookup) {
  SimPier net(10, PierOptions(5));
  // One declaration; every Publish fans out to the primary index AND the
  // dept secondary index (§3.3.3's (index-key, tupleID) entries).
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("emp")
                                 .PartitionBy({"id"})
                                 .SecondaryIndex("dept"))
                  .ok());
  const char* depts[] = {"eng", "eng", "ops", "eng", "sales"};
  for (int i = 0; i < 5; ++i) {
    Tuple t("emp");
    t.Append("id", Value::Int64(i));
    t.Append("dept", Value::String(depts[i]));
    t.Append("name", Value::String("emp" + std::to_string(i)));
    ASSERT_TRUE(net.client(i % net.size())->Publish("emp", t).ok());
  }
  net.RunFor(3 * kSecond);

  // Publish once, query through the secondary index: the opgraph goes to the
  // dept='eng' index partition, which fetches each BASE tuple by its stored
  // primary-key locator.
  auto q = net.client(7)->QueryByIndex("emp", "dept", Value::String("eng"),
                                       8 * kSecond);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  ASSERT_EQ(rows.size(), 3u) << "three eng employees";
  std::set<std::string> names;
  for (const Tuple& t : rows) {
    // The full base tuple was fetched, not just the index entry.
    ASSERT_TRUE(t.Has("name")) << t.ToString();
    ASSERT_TRUE(t.Has("id")) << t.ToString();
    EXPECT_EQ(*t.Get("dept")->AsString(), "eng");
    names.insert(std::string(*t.Get("name")->AsString()));
  }
  EXPECT_EQ(names, (std::set<std::string>{"emp0", "emp1", "emp3"}));

  // No index on "name" was declared.
  auto no_idx = net.client(7)->QueryByIndex("emp", "name",
                                            Value::String("emp0"));
  EXPECT_FALSE(no_idx.ok());

  // The index table is also a queryable relation in its own right, with an
  // equality-targeted plan derived from the catalog hints.
  auto plan = net.client(2)->Compile(
      Sql("SELECT * FROM emp_by_dept WHERE dept = 'ops' TIMEOUT 6s"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->graphs[0].dissem, DissemKind::kEquality);
  auto entries = net.client(2)->Query(std::move(*plan));
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  std::vector<Tuple> idx_rows = entries->Collect();
  ASSERT_EQ(idx_rows.size(), 1u);
  EXPECT_TRUE(idx_rows[0].Has("base_key")) << "locator column";
  EXPECT_EQ(*idx_rows[0].Get("base_table")->AsString(), "emp");
}

TEST(PierClient, RangeIndexFanOut) {
  SimPier net(12, PierOptions(9));
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("readings")
                                 .PartitionBy({"sensor"})
                                 .RangeIndex("temp", /*key_bits=*/8))
                  .ok());
  for (int i = 0; i < 24; ++i) {
    Tuple t("readings");
    t.Append("sensor", Value::Int64(i));
    t.Append("temp", Value::Int64(i * 10));  // 0..230
    ASSERT_TRUE(net.client(i % net.size())->Publish("readings", t).ok());
    if (i % 4 == 3) net.RunFor(500 * kMillisecond);  // pace the trie splits
  }
  net.RunFor(8 * kSecond);

  // A UFL range query over the PHT the publishes fanned into.
  auto q = net.client(1)->Query(Ufl(R"(
    query { timeout = 8s; }
    graph g range(readings_rng_temp, 100, 150) {
      src: source [inject=1, pht_key_bits=8];
      out: result;
      src -> out;
    }
  )"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  std::vector<int64_t> temps;
  for (const Tuple& t : rows) temps.push_back(t.Get("temp")->int64_unchecked());
  std::sort(temps.begin(), temps.end());
  EXPECT_EQ(temps, (std::vector<int64_t>{100, 110, 120, 130, 140, 150}));

  // A PHT namespace is not a scannable relation: an ordinary SQL scan over
  // it could only ever time out with zero rows, so submission rejects it.
  auto scan = net.client(1)->Query(
      Sql("SELECT * FROM readings_rng_temp TIMEOUT 5s"));
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kNotFound);
}

TEST(PierClient, PublishValidatesTuplesAgainstTheSpec) {
  SimPier net(4, PierOptions(21));
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("m")
                                 .PartitionBy({"id"})
                                 .SecondaryIndex("tag")
                                 .RangeIndex("score", 8))
                  .ok());
  Tuple missing_key("m");
  missing_key.Append("score", Value::Int64(4));
  EXPECT_FALSE(net.client(0)->Publish("m", missing_key).ok())
      << "no partition attribute: the tuple would be unfindable";

  Tuple missing_range("m");
  missing_range.Append("id", Value::Int64(1));
  EXPECT_FALSE(net.client(0)->Publish("m", missing_range).ok())
      << "declared range index needs its attribute";

  Tuple bad_range("m");
  bad_range.Append("id", Value::Int64(1));
  bad_range.Append("score", Value::String("high"));
  EXPECT_FALSE(net.client(0)->Publish("m", bad_range).ok());

  // Secondary indexes are sparse: a tuple without the indexed attribute is
  // fine, it is simply not indexed.
  Tuple no_tag("m");
  no_tag.Append("id", Value::Int64(2));
  no_tag.Append("score", Value::Int64(7));
  EXPECT_TRUE(net.client(0)->Publish("m", no_tag).ok());
}

// ---------------------------------------------------------------------------
// Unknown-table submission errors
// ---------------------------------------------------------------------------

TEST(PierClient, SubmittingAQueryOverAnUndeclaredTableFails) {
  SimPier net(4, PierOptions(13));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());

  // SQL path: the table was never declared, so the proxy rejects the plan
  // instead of timing out with zero answers.
  auto q = net.client(0)->Query(Sql("SELECT * FROM mystery TIMEOUT 5s"));
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
  EXPECT_NE(q.status().message().find("mystery"), std::string::npos);

  // Native-plan path surfaces the same error.
  QueryPlan plan;
  plan.timeout = 5 * kSecond;
  OpGraph& g = plan.AddGraph();
  OpSpec& scan = g.AddOp(OpKind::kScan);
  scan.Set("ns", "mystery");
  uint32_t scan_id = scan.id;
  OpSpec& res = g.AddOp(OpKind::kResult);
  g.Connect(scan_id, res.id, 0);
  auto q2 = net.client(0)->Query(std::move(plan));
  ASSERT_FALSE(q2.ok());
  EXPECT_EQ(q2.status().code(), StatusCode::kNotFound);

  // Declared tables pass, including plan-internal rendezvous namespaces
  // (a Put in the plan produces them, so they need no catalog entry).
  auto ok = net.client(0)->Query(
      Sql("SELECT k, count(*) AS c FROM t GROUP BY k TIMEOUT 5s"));
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  // A QueryProcessor with no client attached keeps the paper's bake-it-in
  // contract: no resolver, no check (node 1 never built a client).
  QueryPlan raw;
  raw.timeout = 2 * kSecond;
  OpGraph& rg = raw.AddGraph();
  OpSpec& rscan = rg.AddOp(OpKind::kScan);
  rscan.Set("ns", "mystery");
  uint32_t rscan_id = rscan.id;
  OpSpec& rres = rg.AddOp(OpKind::kResult);
  rg.Connect(rscan_id, rres.id, 0);
  auto raw_qid = net.qp(1)->SubmitQuery(std::move(raw), [](const Tuple&) {});
  EXPECT_TRUE(raw_qid.ok());
}

// ---------------------------------------------------------------------------
// QueryHandle semantics
// ---------------------------------------------------------------------------

TEST(QueryHandleTest, BufferReplaysIntoLateOnTupleRegistration) {
  SimPier net(6, PierOptions(17));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  for (int i = 0; i < 6; ++i) {
    Tuple t("t");
    t.Append("k", Value::Int64(i));
    ASSERT_TRUE(net.client(i % net.size())->Publish("t", t).ok());
  }
  net.RunFor(3 * kSecond);

  auto q = net.client(0)->Query(Sql("SELECT k FROM t TIMEOUT 6s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Let answers arrive BEFORE any callback exists; they must buffer.
  net.RunFor(8 * kSecond);
  EXPECT_EQ(q->stats().tuples, 6u);

  std::vector<int64_t> ks;
  bool done = false;
  q->OnTuple([&](const Tuple& t) {
    ks.push_back(t.Get("k")->int64_unchecked());
  });
  q->OnDone([&]() { done = true; });  // already done: fires immediately
  EXPECT_EQ(ks.size(), 6u) << "buffered answers replay on registration";
  EXPECT_TRUE(done);
  EXPECT_TRUE(q->Collect().empty()) << "buffer was handed to the callback";
}

TEST(QueryHandleTest, StatsTrackLatencies) {
  SimPier net(6, PierOptions(19));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  Tuple t("t");
  t.Append("k", Value::Int64(1));
  ASSERT_TRUE(net.client(0)->Publish("t", t).ok());
  net.RunFor(2 * kSecond);

  auto q = net.client(3)->Query(Sql("SELECT k FROM t TIMEOUT 5s"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->timeout(), 5 * kSecond);
  EXPECT_NE(q->id(), 0u);
  ASSERT_TRUE(q->Wait().ok());
  EXPECT_EQ(q->stats().tuples, 1u);
  EXPECT_GT(q->stats().first_tuple_latency, 0);
  EXPECT_EQ(q->stats().first_tuple_latency, q->stats().last_tuple_latency);
  EXPECT_FALSE(q->stats().cancelled);
}

TEST(QueryHandleTest, EmptyHandleIsInert) {
  QueryHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(h.id(), 0u);
  EXPECT_FALSE(h.done());
  EXPECT_EQ(h.stats().tuples, 0u);
  EXPECT_FALSE(h.Cancel().ok());  // no-op, must not crash
  h.Pause();
  h.Resume();
  h.SetBufferCap(1);
  EXPECT_FALSE(h.paused());
  EXPECT_FALSE(h.Rewindow(kSecond).ok());
  EXPECT_FALSE(h.Wait().ok());
  EXPECT_TRUE(h.Collect().empty());
}

// ---------------------------------------------------------------------------
// Backpressure (Pause/Resume, buffer cap) and continuous-query lifecycle
// ---------------------------------------------------------------------------

void PublishRows(SimPier* net, int n) {
  for (int i = 0; i < n; ++i) {
    Tuple t("t");
    t.Append("k", Value::Int64(i));
    ASSERT_TRUE(net->client(i % net->size())->Publish("t", t).ok());
  }
}

TEST(QueryHandleTest, PauseBuffersAndResumeDeliversLosslessly) {
  SimPier net(6, PierOptions(31));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PublishRows(&net, 6);
  net.RunFor(3 * kSecond);

  auto q = net.client(0)->Query(Sql("SELECT k FROM t TIMEOUT 6s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<int64_t> delivered;
  q->OnTuple([&](const Tuple& t) {
    delivered.push_back(t.Get("k")->int64_unchecked());
  });
  q->Pause();
  EXPECT_TRUE(q->paused());
  net.RunFor(10 * kSecond);  // query runs to completion while paused

  EXPECT_TRUE(q->done());
  EXPECT_EQ(q->stats().tuples, 6u) << "answers reached the paused handle";
  EXPECT_TRUE(delivered.empty()) << "a paused handle delivers nothing";
  EXPECT_EQ(q->stats().dropped, 0u) << "backlog fits under the cap";

  q->Resume();
  EXPECT_FALSE(q->paused());
  EXPECT_EQ(delivered.size(), 6u) << "Resume replays the backlog losslessly";
  std::sort(delivered.begin(), delivered.end());
  EXPECT_EQ(delivered, (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(QueryHandleTest, CancelInsideResumeStopsTheDrain) {
  // Regression: Resume() replays the paused backlog; a callback that
  // Cancel()s mid-drain must stop the replay (the rest stays buffered),
  // while a drain on an already-done handle still replays in full.
  SimPier net(6, PierOptions(59));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PublishRows(&net, 6);
  net.RunFor(3 * kSecond);

  auto q = net.client(0)->Query(
      Sql("SELECT k FROM t TIMEOUT 30s WINDOW 2s CONTINUOUS"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  q->Pause();
  net.RunFor(6 * kSecond);
  ASSERT_FALSE(q->done());
  ASSERT_EQ(q->stats().tuples, 6u);

  size_t delivered = 0;
  QueryHandle handle = *q;
  q->OnTuple([&](const Tuple&) {
    delivered++;
    (void)handle.Cancel();  // teardown is the point; status checked below
  });
  q->Resume();
  EXPECT_EQ(delivered, 1u) << "Cancel mid-drain stops the replay";
  EXPECT_TRUE(q->done());
  EXPECT_EQ(q->Collect().size(), 5u) << "the rest stays buffered";
}

TEST(QueryHandleTest, BufferCapBitesAndCountsDrops) {
  SimPier net(6, PierOptions(37));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PublishRows(&net, 6);
  net.RunFor(3 * kSecond);

  auto q = net.client(1)->Query(Sql("SELECT k FROM t TIMEOUT 6s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  q->SetBufferCap(2);
  std::vector<Tuple> rows = q->Collect();
  EXPECT_EQ(rows.size(), 2u) << "the cap bounds the buffer";
  EXPECT_EQ(q->stats().tuples, 6u);
  EXPECT_EQ(q->stats().dropped, 4u) << "overflow is counted, not silent";
}

TEST(QueryHandleTest, CollectOnRunningContinuousKeepsTheBuffer) {
  SimPier net(6, PierOptions(41));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PublishRows(&net, 6);
  net.RunFor(3 * kSecond);

  auto q = net.client(0)->Query(
      Sql("SELECT k FROM t TIMEOUT 30s WINDOW 2s CONTINUOUS"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> first = q->Collect(/*max_wait=*/6 * kSecond);
  ASSERT_FALSE(q->done()) << "continuous query is still running";
  EXPECT_EQ(first.size(), 6u);
  // A second Collect mid-run sees the SAME prefix again (plus anything that
  // arrived since) — the first call must not have swapped it away.
  std::vector<Tuple> second = q->Collect(/*max_wait=*/1 * kSecond);
  EXPECT_GE(second.size(), first.size());
  EXPECT_TRUE(q->Cancel().ok());
  EXPECT_TRUE(q->done());
}

TEST(QueryHandleTest, CancelFromInsideOnTupleIgnoresLaterAnswers) {
  // Regression: answers already in flight when Cancel() runs (here: the
  // remaining groups of the same window flush) must neither crash the
  // delivery path nor reach the done handle.
  SimPier net(6, PierOptions(43));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());
  const char* srcs[] = {"a", "b", "c"};
  for (int i = 0; i < 12; ++i) {
    Tuple t("ev");
    t.Append("src", Value::String(srcs[i % 3]));
    ASSERT_TRUE(net.client(i % net.size())->Publish("ev", t).ok());
  }
  net.RunFor(3 * kSecond);

  auto q = net.client(0)->Query(
      Sql("SELECT src, count(*) AS c FROM ev GROUP BY src "
          "TIMEOUT 30s WINDOW 2s CONTINUOUS"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t seen = 0;
  QueryHandle handle = *q;
  q->OnTuple([&](const Tuple&) {
    seen++;
    // Cancel mid-window, with sibling groups in flight; done/cancelled are
    // asserted below once the window settles.
    (void)handle.Cancel();
  });
  net.RunFor(20 * kSecond);
  EXPECT_TRUE(q->done());
  EXPECT_TRUE(q->stats().cancelled);
  EXPECT_EQ(seen, 1u) << "no delivery after Cancel";
  EXPECT_EQ(q->stats().tuples, 1u)
      << "a done handle ignores late answers entirely";
}

// ---------------------------------------------------------------------------
// Batched publishing (PublishBatch + auto-batching)
// ---------------------------------------------------------------------------

/// Objects of `ns` stored across the whole network (background maintenance
/// traffic — tree joins etc. — stores objects too, so per-namespace counts
/// are the only stable assertion base).
uint64_t StoredObjects(SimPier* net, const std::string& ns) {
  uint64_t n = 0;
  for (uint32_t i = 0; i < net->size(); ++i)
    n += net->dht(i)->objects()->NamespaceObjects(ns);
  return n;
}

uint64_t BatchedPuts(SimPier* net) {
  uint64_t n = 0;
  for (uint32_t i = 0; i < net->size(); ++i)
    n += net->dht(i)->stats().batched_puts;
  return n;
}

TEST(PublishBatchTest, ExplicitBatchFansOutAndIsQueryable) {
  SimPier net(8, PierOptions(61));
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("emp")
                                 .PartitionBy({"id"})
                                 .SecondaryIndex("dept"))
                  .ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 12; ++i) {
    Tuple t("emp");
    t.Append("id", Value::Int64(i));
    t.Append("dept", Value::String(i % 2 ? "eng" : "ops"));
    rows.push_back(std::move(t));
  }
  ASSERT_TRUE(net.client(0)->PublishBatch("emp", rows).ok());
  net.RunFor(5 * kSecond);

  EXPECT_GT(BatchedPuts(&net), 0u) << "the batch path must actually engage";
  // One registry update for the whole batch, same totals as per-tuple.
  EXPECT_EQ(net.stats()->Snapshot("emp").tuples, 12u);

  auto q = net.client(3)->Query(Sql("SELECT id FROM emp TIMEOUT 6s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->Collect().size(), 12u);
  auto by_idx =
      net.client(3)->QueryByIndex("emp", "dept", Value::String("eng"));
  ASSERT_TRUE(by_idx.ok()) << by_idx.status().ToString();
  EXPECT_EQ(by_idx->Collect().size(), 6u)
      << "secondary entries rode the same batch";
}

TEST(PublishBatchTest, ValidationIsAllOrNothing) {
  SimPier net(4, PierOptions(63));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("m").PartitionBy({"id"})).ok());
  Tuple good("m");
  good.Append("id", Value::Int64(1));
  Tuple bad("m");  // no partition attribute
  bad.Append("x", Value::Int64(2));
  uint64_t before = StoredObjects(&net, "m");
  Status s = net.client(0)->PublishBatch("m", {good, bad});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  net.RunFor(3 * kSecond);
  EXPECT_EQ(StoredObjects(&net, "m"), before) << "nothing of the batch published";
}

TEST(PublishBatchTest, AutoBatchFlushesOnSize) {
  SimPier net(6, PierOptions(67));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PierClient* c = net.client(0);
  c->SetPublishBatching(4, /*max_delay=*/60 * kSecond);  // timer can't fire
  uint64_t before = StoredObjects(&net, "t");
  for (int i = 0; i < 3; ++i) {
    Tuple t("t");
    t.Append("k", Value::Int64(i));
    ASSERT_TRUE(c->Publish("t", t).ok());
  }
  net.RunFor(3 * kSecond);
  EXPECT_EQ(StoredObjects(&net, "t"), before)
      << "below the size trigger nothing ships";
  Tuple t4("t");
  t4.Append("k", Value::Int64(3));
  ASSERT_TRUE(c->Publish("t", t4).ok());  // 4th tuple: flush
  net.RunFor(3 * kSecond);
  EXPECT_EQ(StoredObjects(&net, "t"), before + 4);
}

TEST(PublishBatchTest, AutoBatchFlushesOnTimer) {
  SimPier net(6, PierOptions(71));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PierClient* c = net.client(0);
  c->SetPublishBatching(100, /*max_delay=*/500 * kMillisecond);
  uint64_t before = StoredObjects(&net, "t");
  for (int i = 0; i < 2; ++i) {
    Tuple t("t");
    t.Append("k", Value::Int64(i));
    ASSERT_TRUE(c->Publish("t", t).ok());
  }
  net.RunFor(200 * kMillisecond);
  EXPECT_EQ(StoredObjects(&net, "t"), before) << "window not yet elapsed";
  net.RunFor(5 * kSecond);
  EXPECT_EQ(StoredObjects(&net, "t"), before + 2) << "the delay timer flushed";
}

TEST(PublishBatchTest, ExplicitFlushShipsTheBuffer) {
  SimPier net(6, PierOptions(73));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PierClient* c = net.client(0);
  c->SetPublishBatching(100, /*max_delay=*/60 * kSecond);
  uint64_t before = StoredObjects(&net, "t");
  for (int i = 0; i < 5; ++i) {
    Tuple t("t");
    t.Append("k", Value::Int64(i));
    ASSERT_TRUE(c->Publish("t", t).ok());
  }
  ASSERT_TRUE(c->Flush().ok());
  net.RunFor(3 * kSecond);
  EXPECT_EQ(StoredObjects(&net, "t"), before + 5);
  // A second Flush with nothing buffered is a no-op.
  EXPECT_TRUE(c->Flush().ok());
}

TEST(PublishBatchTest, ExplicitBatchFlushesThePendingBufferFirst) {
  // An explicit PublishBatch must not overtake tuples already waiting in
  // the same table's auto-batch buffer.
  SimPier net(6, PierOptions(77));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PierClient* c = net.client(0);
  c->SetPublishBatching(100, /*max_delay=*/60 * kSecond);
  uint64_t before = StoredObjects(&net, "t");
  Tuple first("t");
  first.Append("k", Value::Int64(1));
  ASSERT_TRUE(c->Publish("t", first).ok());  // buffered
  Tuple second("t");
  second.Append("k", Value::Int64(2));
  ASSERT_TRUE(c->PublishBatch("t", {second}).ok());  // ships buffer + batch
  net.RunFor(3 * kSecond);
  EXPECT_EQ(StoredObjects(&net, "t"), before + 2)
      << "the buffered tuple must ship with (before) the explicit batch";
}

TEST(PublishBatchTest, DisablingBatchingFlushesTheBacklog) {
  SimPier net(6, PierOptions(79));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  PierClient* c = net.client(0);
  c->SetPublishBatching(100, 60 * kSecond);
  uint64_t before = StoredObjects(&net, "t");
  Tuple t("t");
  t.Append("k", Value::Int64(1));
  ASSERT_TRUE(c->Publish("t", t).ok());
  c->SetPublishBatching(0, 0);  // off — must not strand the buffered tuple
  net.RunFor(3 * kSecond);
  EXPECT_EQ(StoredObjects(&net, "t"), before + 1);
}

TEST(PierClient, ReplanModeIsValidated) {
  SimPier net(2, PierOptions(47));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  auto q = net.client(0)->Query(
      Sql("SELECT * FROM t TIMEOUT 2s").WithReplan("sometimes"));
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(PierClient, StatsRefreshFoldsRemoteRowsIntoAPrivateRegistry) {
  SimPier net(6, PierOptions(53));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());

  // A client with a PRIVATE registry (distinct origin) on node 3: the
  // shared-registry clients' sys.stats rows are foreign to it.
  PierClient mine(net.qp(3), net.catalog(),
                  [&net](TimeUs t) { net.RunFor(t); });
  ASSERT_FALSE(mine.stats()->Has("ev"));
  auto refresh = mine.StartStatsRefresh(/*window=*/2 * kSecond,
                                        /*lifetime=*/60 * kSecond);
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();

  for (int i = 0; i < 100; ++i) {
    Tuple t("ev");
    t.Append("src", Value::Int64(i % 10));
    ASSERT_TRUE(net.client(i % net.size())->Publish("ev", t).ok());
  }
  // Publish pacing already pushed sys.stats rows at the 64-tuple mark; an
  // explicit republish covers the tail.
  ASSERT_TRUE(net.client(0)->PublishStats().ok());
  net.RunFor(6 * kSecond);

  ASSERT_TRUE(mine.stats()->Has("ev"))
      << "the refresh folds arriving sys.stats rows automatically";
  EXPECT_EQ(mine.stats()->Snapshot("ev").tuples, 100u);

  // Calling again while the refresh runs returns the running query.
  auto again = mine.StartStatsRefresh();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->id(), refresh->id());
}

}  // namespace
}  // namespace pier
