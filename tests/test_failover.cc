// Churn-hardened continuous-query lifecycle: proxy failover to successors,
// orphan reaping by lease expiry, deadline preservation across failover,
// cancel semantics on orphaned handles, the cancel tombstone, and swap-time
// catch-up suppression.

#include <gtest/gtest.h>

#include <vector>

#include "overlay/sim_overlay.h"
#include "qp/sim_pier.h"
#include "qp/ufl.h"

namespace pier {
namespace {

SimPier::Options PierOptions(uint64_t seed = 7) {
  SimPier::Options opts;
  opts.sim.seed = seed;
  opts.seed_routing = true;
  opts.settle_time = 8 * kSecond;
  return opts;
}

constexpr TimeUs kLease = 2 * kSecond;

/// The continuous counting query used throughout: GROUP BY over a
/// non-partition column, so every data-holding node participates.
Sql CountingQuery(SimPier* net, std::vector<uint32_t> successor_nodes,
                  const std::string& timeout = "60s") {
  std::vector<NetAddress> succ;
  for (uint32_t n : successor_nodes)
    succ.push_back(net->dht(n)->local_address());
  return Sql("SELECT src, count(*) AS cnt FROM ev GROUP BY src TIMEOUT " +
             timeout + " WINDOW 2s CONTINUOUS")
      .WithSuccessors(std::move(succ))
      .WithLeasePeriod(kLease);
}

void RegisterEv(SimPier* net) {
  ASSERT_TRUE(
      net->catalog()->Register(TableSpec("ev").PartitionBy({"id"})).ok());
}

/// Publish one ev row (unique id = spreads across nodes; fixed src = the
/// group key) from a LIVE node.
void PublishEv(SimPier* net, int64_t* next_id) {
  Tuple e("ev");
  e.Append("id", Value::Int64((*next_id)++));
  e.Append("src", Value::String("live"));
  for (uint32_t n = 0; n < net->size(); ++n) {
    uint32_t pub = static_cast<uint32_t>((*next_id + n) % net->size());
    if (!net->harness()->IsAlive(pub)) continue;
    ASSERT_TRUE(net->client(pub)->Publish("ev", e).ok());
    return;
  }
}

size_t LiveExecutorsRunning(SimPier* net, uint64_t qid) {
  size_t running = 0;
  for (uint32_t i = 0; i < net->size(); ++i) {
    if (!net->harness()->IsAlive(i)) continue;
    if (net->qp(i)->executor()->HasQuery(qid)) running++;
  }
  return running;
}

TEST(Failover, ProxyKillFailsOverToSuccessorAndAnswersResume) {
  SimPier net(10, PierOptions(211));
  RegisterEv(&net);
  int64_t next_id = 0;

  auto q = net.client(1)->Query(CountingQuery(&net, {2}));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  size_t before_kill = 0;
  q->OnTuple([&](const Tuple&) { before_kill++; });

  for (int i = 0; i < 10; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  EXPECT_GT(before_kill, 0u) << "steady answers before the kill";
  ASSERT_EQ(net.qp(2)->stats().adoptions, 0u);

  net.harness()->FailNode(1);

  // Keep the stream alive; executors detect the dead proxy (lease expiry /
  // answer-forward give-ups) and node 2 — first in the chain — adopts.
  for (int i = 0; i < 12; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  EXPECT_EQ(net.qp(2)->stats().adoptions, 1u) << "successor adopted the query";
  for (uint32_t i = 3; i < net.size(); ++i) {
    EXPECT_GT(net.qp(i)->executor()->stats().proxy_failovers +
                  net.qp(i)->executor()->stats().orphan_reaps,
              0u)
        << "node " << i << " never noticed the proxy died";
    EXPECT_EQ(net.qp(i)->executor()->stats().orphan_reaps, 0u)
        << "node " << i << " reaped despite a live successor";
  }

  // Re-attach through the adopting node: the backlog it buffered while the
  // query had no client replays, and the stream continues.
  auto attached = net.client(2)->Attach(qid);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  size_t after_attach = 0;
  attached->OnTuple([&](const Tuple&) { after_attach++; });
  size_t replayed = after_attach;
  EXPECT_GT(net.qp(2)->stats().answers_buffered, 0u)
      << "the adopted proxy held answers for the missing client";
  EXPECT_GT(replayed, 0u) << "buffered answers replay on attach";

  for (int i = 0; i < 8; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  EXPECT_GT(after_attach, replayed) << "live answers resume after re-attach";
  EXPECT_FALSE(attached->done());

  // Attaching a query this node does NOT proxy stays an error.
  EXPECT_EQ(net.client(3)->Attach(qid).status().code(), StatusCode::kNotFound);
}

TEST(Failover, NoSuccessorsMeansExecutorsReapByLeaseExpiry) {
  SimPier net(8, PierOptions(223));
  RegisterEv(&net);
  int64_t next_id = 0;

  auto q = net.client(1)->Query(CountingQuery(&net, {}));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  for (int i = 0; i < 5; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  ASSERT_GT(LiveExecutorsRunning(&net, qid), 1u)
      << "the query must be running remotely before the kill";

  net.harness()->FailNode(1);
  // One lease period for the lease to starve, plus the check-tick and the
  // point-to-point probe corroboration (lease/2 timeout): every surviving
  // executor reaps the orphan — opgraphs gone, timers cancelled.
  net.RunFor(2 * kLease + kLease / 2);
  EXPECT_EQ(LiveExecutorsRunning(&net, qid), 0u)
      << "orphaned opgraphs must not outlive the lease";
  bool reason_seen = false;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (!net.harness()->IsAlive(i)) continue;
    const QueryExecutor::Stats& st = net.qp(i)->executor()->stats();
    if (st.orphan_reaps > 0) {
      reason_seen = true;
      EXPECT_NE(st.last_orphan_reason.find("no proxy successor"),
                std::string::npos)
          << st.last_orphan_reason;
    }
  }
  EXPECT_TRUE(reason_seen) << "at least one executor recorded the abort reason";
}

TEST(Failover, DeadlineIsHonoredAcrossFailover) {
  SimPier net(8, PierOptions(227));
  RegisterEv(&net);
  int64_t next_id = 0;

  auto q = net.client(1)->Query(CountingQuery(&net, {2}, "14s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  for (int i = 0; i < 4; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }

  net.harness()->FailNode(1);
  for (int i = 0; i < 4; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  ASSERT_EQ(net.qp(2)->stats().adoptions, 1u);

  auto attached = net.client(2)->Attach(qid);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  // The adopted query ends at the ORIGINAL absolute deadline (14s from
  // submission), not a fresh timeout from adoption: the remaining lifetime
  // the attached handle reports must be well under the original.
  EXPECT_LT(attached->timeout(), 9 * kSecond);
  bool done_fired = false;
  attached->OnDone([&] { done_fired = true; });

  net.RunFor(9 * kSecond);  // past deadline + slack
  EXPECT_TRUE(done_fired) << "done fires at the original deadline";
  EXPECT_TRUE(attached->done());
  EXPECT_EQ(LiveExecutorsRunning(&net, qid), 0u)
      << "executors close at the absolute deadline, failover or not";
}

TEST(Failover, SwapDrivenByTheAdoptedProxySurvivesTheRace) {
  SimPier net(8, PierOptions(229));
  RegisterEv(&net);
  int64_t next_id = 0;

  const char* text =
      "SELECT src, count(*) AS cnt FROM ev GROUP BY src "
      "TIMEOUT 60s WINDOW 2s CONTINUOUS";
  Sql query = Sql(text).WithAggStrategy("flat").WithSuccessors(
      {net.dht(2)->local_address()});
  query.WithLeasePeriod(kLease);
  auto q = net.client(1)->Query(query);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();

  for (int i = 0; i < 6; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  net.harness()->FailNode(1);
  for (int i = 0; i < 6; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  ASSERT_EQ(net.qp(2)->stats().adoptions, 1u);

  // Before adoption completes everywhere, some executors may still be
  // walking their failover chain — the adopted proxy swaps the plan anyway.
  auto hier = net.client(2)->Compile(Sql(text).WithAggStrategy("hier"));
  ASSERT_TRUE(hier.ok()) << hier.status().ToString();
  uint32_t hier_gid = hier->graphs[0].id;
  uint32_t hier_op = 0;
  for (const OpSpec& op : hier->graphs[0].ops) {
    if (op.kind == OpKind::kHierAgg) hier_op = op.id;
  }
  ASSERT_NE(hier_op, 0u);
  ASSERT_TRUE(net.qp(2)->SwapQuery(qid, std::move(*hier)).ok())
      << "the ADOPTED proxy owns the swap";
  net.RunFor(2 * kSecond);

  Operator* op = net.qp(4)->executor()->FindOp(qid, hier_gid, hier_op);
  ASSERT_NE(op, nullptr) << "swapped generation reached remote executors";
  EXPECT_EQ(op->spec().kind, OpKind::kHierAgg);

  auto attached = net.client(2)->Attach(qid);
  ASSERT_TRUE(attached.ok());
  size_t answers = 0;
  attached->OnTuple([&](const Tuple&) { answers++; });
  for (int i = 0; i < 6; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  EXPECT_GT(answers, 0u) << "the swapped plan answers through the new proxy";
}

TEST(Failover, SuccessorThatDoesNotRunTheQueryIsWalkedPastAndReaped) {
  // An equality-disseminated continuous query runs on ONE partition owner.
  // If its configured successor is some other node, that node can never
  // adopt (it has no RunningQuery, so stray answers are no-ops) — the probe
  // must report "alive but not proxying" so the walk moves past it to a
  // reap, instead of leasing the silent successor until the deadline.
  SimPier net(10, PierOptions(251));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());
  const char* text =
      "SELECT * FROM ev WHERE src = 'x' TIMEOUT 60s WINDOW 2s CONTINUOUS";

  // Find the partition owner this query's opgraph will land on.
  auto compiled = net.client(1)->Compile(Sql(text));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled->graphs[0].dissem, DissemKind::kEquality);
  Id target = RoutingId(compiled->graphs[0].dissem_ns,
                        compiled->graphs[0].dissem_key);
  uint32_t owner = 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (net.dht(i)->router()->protocol()->IsOwner(target)) owner = i;
  }
  uint32_t successor = 2;
  while (successor == owner || successor == 1) successor++;

  Sql query = Sql(text).WithSuccessors({net.dht(successor)->local_address()});
  query.WithLeasePeriod(kLease);
  auto q = net.client(1)->Query(query);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  net.RunFor(4 * kSecond);
  ASSERT_TRUE(net.qp(owner)->executor()->HasQuery(qid));
  ASSERT_FALSE(net.qp(successor)->executor()->HasQuery(qid))
      << "test premise: the successor must not run the query";

  net.harness()->FailNode(1);
  // Walk: dead-proxy probe fails -> successor leased -> two consecutive
  // alive-but-not-proxying verdicts -> chain exhausted -> reap.
  net.RunFor(8 * kLease);
  EXPECT_FALSE(net.qp(owner)->executor()->HasQuery(qid))
      << "the owner kept executing for a successor that can never adopt";
  EXPECT_EQ(net.qp(successor)->stats().adoptions, 0u);
  EXPECT_GT(net.qp(owner)->executor()->stats().orphan_reaps, 0u);
}

TEST(Failover, CancelOnAnOrphanedHandleTearsDownLocallyAndSaysUnavailable) {
  SimPier net(6, PierOptions(233));
  RegisterEv(&net);

  auto q = net.client(0)->Query(CountingQuery(&net, {}));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  net.RunFor(2 * kSecond);

  // Orphan the handle: the proxy-side record disappears underneath it (the
  // executor-driven reap path does exactly this when the chain is dead).
  net.qp(0)->CancelQuery(qid);

  bool done_fired = false;
  q->OnDone([&] { done_fired = true; });
  Status s = q->Cancel();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  EXPECT_TRUE(q->done()) << "the handle completes instead of hanging";
  EXPECT_TRUE(done_fired);
  EXPECT_TRUE(q->Cancel().ok()) << "second cancel is an idempotent no-op";
}

TEST(Failover, CancelTombstoneStopsExecutorsAndPreventsAdoption) {
  SimPier net(8, PierOptions(239));
  RegisterEv(&net);
  int64_t next_id = 0;

  auto q = net.client(1)->Query(CountingQuery(&net, {2}));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  for (int i = 0; i < 5; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  ASSERT_GT(LiveExecutorsRunning(&net, qid), 1u);

  EXPECT_TRUE(q->Cancel().ok());
  net.RunFor(2 * kSecond);  // tombstone broadcast fan-out
  EXPECT_EQ(LiveExecutorsRunning(&net, qid), 0u)
      << "cancel reaches executors without waiting out the lease";
  net.RunFor(2 * kLease);
  EXPECT_EQ(net.qp(2)->stats().adoptions, 0u)
      << "a cancelled query must not be adopted by its successor";
}

TEST(Failover, DurableTombstoneUnadoptsASuccessorThatMissedTheBroadcast) {
  SimPier net(8, PierOptions(257));
  RegisterEv(&net);
  auto q = net.client(1)->Query(CountingQuery(&net, {2}));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  net.RunFor(4 * kSecond);
  ASSERT_TRUE(q->Cancel().ok());
  net.RunFor(2 * kSecond);  // broadcast tombstone + durable DHT put settle

  // Simulate a successor that MISSED the tombstone broadcast and adopted
  // through lease starvation: force the adoption directly with the stale
  // metadata such an executor would hold.
  QueryPlan meta;
  meta.query_id = qid;
  meta.continuous = true;
  meta.timeout = 60 * kSecond;
  meta.deadline_us = net.loop()->now() + 50 * kSecond;
  meta.proxy = net.dht(2)->local_address();
  meta.proxy_epoch = 1;
  meta.successors = {net.dht(2)->local_address()};
  meta.lease_period_us = kLease;
  meta.window = 2 * kSecond;
  net.qp(2)->AdoptQuery(meta);
  EXPECT_TRUE(net.qp(2)->HasClientQuery(qid)) << "adoption is optimistic";

  net.RunFor(3 * kSecond);  // the tombstone Get round-trip corrects it
  EXPECT_FALSE(net.qp(2)->HasClientQuery(qid))
      << "the durable tombstone must un-adopt a cancelled query";
}

/// The node currently owning RoutingId(ns, key), or -1 if none is alive.
int OwnerOf(SimPier* net, const std::string& ns, const std::string& key) {
  Id target = RoutingId(ns, key);
  for (uint32_t i = 0; i < net->size(); ++i) {
    if (!net->harness()->IsAlive(i)) continue;
    if (net->dht(i)->router()->protocol()->IsOwner(target))
      return static_cast<int>(i);
  }
  return -1;
}

TEST(Failover, TombstoneSurvivesItsOwnersDeathThroughReplicas) {
  auto opts = PierOptions(263);
  opts.dht.replication_factor = 3;
  SimPier net(10, opts);
  RegisterEv(&net);
  auto q = net.client(1)->Query(CountingQuery(&net, {2}));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  net.RunFor(4 * kSecond);
  ASSERT_TRUE(q->Cancel().ok());
  net.RunFor(2 * kSecond);  // durable tombstone put + replica frames settle

  // Kill the very node that owns the durable tombstone. With k = 1 this
  // would reopen PR 5's adoption hole: the un-adopt Get would find nothing.
  int owner = OwnerOf(&net, "!qtomb", std::to_string(qid));
  ASSERT_GE(owner, 0);
  uint32_t adopter = owner == 2 ? 3 : 2;
  net.harness()->FailNode(static_cast<uint32_t>(owner));
  net.RunFor(8 * kSecond);  // stabilize: a tombstone replica gets promoted

  // A successor that missed the cancel broadcast force-adopts with the
  // stale metadata it would still hold.
  QueryPlan meta;
  meta.query_id = qid;
  meta.continuous = true;
  meta.timeout = 60 * kSecond;
  meta.deadline_us = net.loop()->now() + 50 * kSecond;
  meta.proxy = net.dht(adopter)->local_address();
  meta.proxy_epoch = 1;
  meta.successors = {net.dht(adopter)->local_address()};
  meta.lease_period_us = kLease;
  meta.window = 2 * kSecond;
  net.qp(adopter)->AdoptQuery(meta);
  EXPECT_TRUE(net.qp(adopter)->HasClientQuery(qid));

  net.RunFor(4 * kSecond);
  EXPECT_FALSE(net.qp(adopter)->HasClientQuery(qid))
      << "the tombstone's replicas must un-adopt even with its owner dead";
}

TEST(Failover, AdoptionRecoversTheFullPlanThroughReplicasOfADeadOwner) {
  auto opts = PierOptions(271);
  opts.dht.replication_factor = 3;
  SimPier net(10, opts);
  RegisterEv(&net);
  int64_t next_id = 0;

  // Two graphs of different dissemination classes: the adopter's executor
  // can rebuild only the broadcast one, so a full ProxyPlan after adoption
  // proves the "!qplan" read-through worked.
  const char* kText = R"(
    query { timeout = 60s; window = 2s; continuous; }
    graph g1 broadcast { s: scan [ns=ev, watch=1]; o: result; s -> o; }
    graph g2 local { s: scan [ns=ev]; o: result; s -> o; }
  )";

  // The durable plan's owner must be a third node — if the id lands on the
  // proxy or its successor, resubmit: the fresh query id moves it.
  uint64_t qid = 0;
  int owner = -1;
  for (int attempt = 0; attempt < 8 && owner < 0; ++attempt) {
    auto plan = ParseUfl(kText);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_EQ(plan->graphs.size(), 2u);
    plan->successors = {net.dht(2)->local_address()};
    plan->lease_period_us = kLease;
    auto submitted = net.qp(1)->SubmitQuery(*plan, nullptr);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    net.RunFor(3 * kSecond);  // dissemination + durable plan replication
    int at = OwnerOf(&net, "!qplan", std::to_string(*submitted));
    ASSERT_GE(at, 0);
    if (at != 1 && at != 2) {
      qid = *submitted;
      owner = at;
      break;
    }
    net.qp(1)->CancelQuery(*submitted);
    net.RunFor(kSecond);
  }
  ASSERT_GE(owner, 0) << "no query id placed its plan off the proxy chain";

  // First the plan's primary owner dies, then the proxy. The adopter must
  // recover the non-broadcast graph from a surviving plan replica.
  net.harness()->FailNode(static_cast<uint32_t>(owner));
  net.RunFor(8 * kSecond);  // let routing heal before the adopter's plan Get
  net.harness()->FailNode(1);
  for (int i = 0; i < 12; ++i) {
    PublishEv(&net, &next_id);
    net.RunFor(kSecond);
  }
  ASSERT_EQ(net.qp(2)->stats().adoptions, 1u) << "successor adopted";

  auto adopted = net.qp(2)->ProxyPlan(qid);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted->graphs.size(), 2u)
      << "the local graph was only recoverable from the plan's replicas";
}

// ---------------------------------------------------------------------------
// Swap-time catch-up suppression
// ---------------------------------------------------------------------------

TEST(Failover, SwapDoesNotDoubleCountHistoryInTheFirstWindow) {
  SimPier net(8, PierOptions(241));
  RegisterEv(&net);
  int64_t next_id = 0;

  const char* text =
      "SELECT src, count(*) AS cnt FROM ev GROUP BY src "
      "TIMEOUT 120s WINDOW 2s CONTINUOUS";
  auto q = net.client(0)->Query(Sql(text).WithAggStrategy("flat"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();

  int64_t total = 0;
  q->OnTuple([&](const Tuple& t) {
    total += t.Get("cnt")->int64_unchecked();
  });

  // 40 rows of history, fully counted across the pre-swap windows.
  for (int i = 0; i < 40; ++i) PublishEv(&net, &next_id);
  net.RunFor(8 * kSecond);
  EXPECT_EQ(total, 40) << "every historical row counted exactly once";

  // Swap the physical plan. The swapped-in Scans re-read live soft state —
  // all 40 rows are still there — but the swap-time high-water mark makes
  // them skip history the previous generation already answered.
  auto hier = net.client(0)->Compile(Sql(text).WithAggStrategy("hier"));
  ASSERT_TRUE(hier.ok()) << hier.status().ToString();
  ASSERT_TRUE(net.qp(0)->SwapQuery(qid, std::move(*hier)).ok());
  int64_t at_swap = total;
  net.RunFor(8 * kSecond);
  EXPECT_LE(total - at_swap, 2)
      << "the first post-swap window re-counted history";

  // New arrivals after the swap still count normally. (The hier root's
  // monotone refinement may re-emit a refined total for the same window, so
  // the bound allows a small overshoot — the failure mode under test is the
  // ~40-row history re-count, not off-by-a-refinement.)
  for (int i = 0; i < 5; ++i) PublishEv(&net, &next_id);
  net.RunFor(6 * kSecond);
  EXPECT_GE(total - at_swap, 5) << "post-swap arrivals still flow";
  EXPECT_LE(total - at_swap, 12) << "post-swap total stays history-free";
}

}  // namespace
}  // namespace pier
