// Operator-level tests: local opgraphs on a one-node network, driven through
// the executor with injected tuples. These exercise each operator's contract
// (including the best-effort malformed-tuple policy) without the cost of a
// full multi-node simulation.

#include <gtest/gtest.h>

#include <algorithm>

#include "data/tuple_batch.h"
#include "qp/sim_pier.h"
#include "util/random.h"

namespace pier {
namespace {

/// A one-node rig: builds a local graph source[inject] -> <middle> -> result
/// and collects emitted tuples.
class LocalGraph {
 public:
  explicit LocalGraph(uint64_t seed = 99) {
    SimPier::Options opts;
    opts.sim.seed = seed;
    opts.settle_time = 1 * kSecond;
    net_ = std::make_unique<SimPier>(1, opts);
  }

  /// Builds source -> ops... -> result. Returns ids of the middle ops.
  std::vector<uint32_t> Build(std::vector<OpSpec> middle,
                              TimeUs timeout = 60 * kSecond) {
    plan_.query_id = 50000 + seed_counter_++;
    plan_.timeout = timeout;
    OpGraph& g = plan_.AddGraph();
    g.dissem = DissemKind::kLocal;
    OpSpec& src = g.AddOp(OpKind::kSource);
    src.SetInt("inject", 1);
    src_id_ = src.id;
    uint32_t prev = src_id_;
    std::vector<uint32_t> ids;
    for (OpSpec& spec : middle) {
      OpSpec& op = g.AddOp(spec.kind);
      op.params = spec.params;
      uint32_t id = op.id;
      ids.push_back(id);
      g.Connect(prev, id, 0);
      prev = id;
    }
    OpSpec& res = g.AddOp(OpKind::kResult);
    g.Connect(prev, res.id, 0);
    graph_id_ = g.id;

    auto qid = net_->qp(0)->SubmitQuery(
        plan_, [this](const Tuple& t) { out.push_back(t); });
    EXPECT_TRUE(qid.ok()) << qid.status().ToString();
    net_->RunFor(100 * kMillisecond);
    return ids;
  }

  void Inject(const Tuple& t) {
    EXPECT_TRUE(net_->qp(0)
                    ->executor()
                    ->InjectTuple(plan_.query_id, graph_id_, src_id_, t)
                    .ok());
  }

  void InjectBatch(const TupleBatch& b) {
    EXPECT_TRUE(net_->qp(0)
                    ->executor()
                    ->InjectBatch(plan_.query_id, graph_id_, src_id_, b)
                    .ok());
  }

  void Run(TimeUs t = 500 * kMillisecond) { net_->RunFor(t); }

  void Flush() { net_->qp(0)->executor()->FlushQuery(plan_.query_id); }

  Operator* Op(uint32_t id) {
    return net_->qp(0)->executor()->FindOp(plan_.query_id, graph_id_, id);
  }

  std::vector<Tuple> out;

 private:
  std::unique_ptr<SimPier> net_;
  QueryPlan plan_;
  uint32_t src_id_ = 0;
  uint32_t graph_id_ = 0;
  uint64_t seed_counter_ = 0;
};

Tuple Row(int64_t a, int64_t b) {
  Tuple t("t");
  t.Append("a", Value::Int64(a));
  t.Append("b", Value::Int64(b));
  return t;
}

TEST(Operators, SelectionDiscardsMalformedTuplesSilently) {
  LocalGraph g;
  OpSpec sel(0, OpKind::kSelection);
  sel.SetExpr("pred", *ParseExpr("a > 5"));
  g.Build({sel});
  g.Inject(Row(10, 0));                       // passes
  g.Inject(Row(3, 0));                        // fails predicate
  g.Inject(Tuple("t", {{"x", Value::Int64(9)}}));  // no column a: discarded
  Tuple wrong_type("t");
  wrong_type.Append("a", Value::String("ten"));     // type error: discarded
  g.Inject(wrong_type);
  g.Run();
  ASSERT_EQ(g.out.size(), 1u);
  EXPECT_EQ(*g.out[0].Get("a")->AsInt64(), 10);
}

TEST(Operators, ProjectionComputedColumns) {
  LocalGraph g;
  OpSpec proj(0, OpKind::kProjection);
  proj.SetStrings("cols", {"a"});
  proj.Set("out0", "twice");
  proj.SetExpr("expr0", *ParseExpr("a * 2"));
  g.Build({proj});
  g.Inject(Row(21, 1));
  g.Run();
  ASSERT_EQ(g.out.size(), 1u);
  EXPECT_EQ(*g.out[0].Get("twice")->AsInt64(), 42);
  EXPECT_FALSE(g.out[0].Has("b"));
}

TEST(Operators, DupElimByContentAndBySubset) {
  LocalGraph g;
  g.Build({OpSpec(0, OpKind::kDupElim)});
  g.Inject(Row(1, 1));
  g.Inject(Row(1, 1));  // exact duplicate
  g.Inject(Row(1, 2));  // differs in b
  g.Run();
  EXPECT_EQ(g.out.size(), 2u);

  LocalGraph g2;
  OpSpec de(0, OpKind::kDupElim);
  de.SetStrings("cols", {"a"});
  g2.Build({de});
  g2.Inject(Row(1, 1));
  g2.Inject(Row(1, 2));  // same a: duplicate under the subset
  g2.Inject(Row(2, 1));
  g2.Run();
  EXPECT_EQ(g2.out.size(), 2u);
}

TEST(Operators, QueueYieldsButPreservesOrderAndCount) {
  LocalGraph g;
  OpSpec q(0, OpKind::kQueue);
  auto ids = g.Build({q});
  for (int i = 0; i < 600; ++i) g.Inject(Row(i, 0));
  EXPECT_LT(g.out.size(), 600u) << "queue must defer past the batch limit";
  g.Run();
  ASSERT_EQ(g.out.size(), 600u);
  for (int i = 0; i < 600; ++i)
    EXPECT_EQ(*g.out[i].Get("a")->AsInt64(), i) << "FIFO order";
}

TEST(Operators, LimitStopsTheQueryLocally) {
  LocalGraph g;
  OpSpec lim(0, OpKind::kLimit);
  lim.SetInt("k", 3);
  g.Build({lim});
  for (int i = 0; i < 10; ++i) g.Inject(Row(i, 0));
  g.Run();
  EXPECT_EQ(g.out.size(), 3u);
}

TEST(Operators, GroupByLocalEmitsOnFlushAndTumbles) {
  LocalGraph g;
  OpSpec agg(0, OpKind::kGroupBy);
  agg.SetStrings("keys", {"a"});
  agg.Set("aggs", "count::n,sum:b:total");
  auto ids = g.Build({agg});
  g.Inject(Row(1, 10));
  g.Inject(Row(1, 20));
  g.Inject(Row(2, 5));
  g.Run();
  EXPECT_TRUE(g.out.empty()) << "blocking operator: nothing before flush";
  g.Flush();
  g.Run();
  ASSERT_EQ(g.out.size(), 2u);
  for (const Tuple& t : g.out) {
    if (*t.Get("a")->AsInt64() == 1) {
      EXPECT_EQ(*t.Get("n")->AsInt64(), 2);
      EXPECT_EQ(*t.Get("total")->AsInt64(), 30);
    } else {
      EXPECT_EQ(*t.Get("n")->AsInt64(), 1);
    }
  }
  // Tumbling: a second flush with no new input emits nothing.
  size_t before = g.out.size();
  g.Flush();
  g.Run();
  EXPECT_EQ(g.out.size(), before);
}

TEST(Operators, TopKDedupReplacesRefinedGroups) {
  LocalGraph g;
  OpSpec topk(0, OpKind::kTopK);
  topk.SetInt("k", 2);
  topk.Set("col", "b");
  topk.SetInt("desc", 1);
  topk.SetStrings("dedup", {"a"});
  g.Build({topk});
  g.Inject(Row(1, 10));
  g.Inject(Row(2, 20));
  g.Inject(Row(3, 5));
  g.Flush();
  g.Run();
  ASSERT_EQ(g.out.size(), 2u);
  EXPECT_EQ(*g.out[0].Get("a")->AsInt64(), 2);
  EXPECT_EQ(*g.out[1].Get("a")->AsInt64(), 1);
  // A refined value for group 3 overtakes; re-flush emits the new ranking.
  g.Inject(Row(3, 99));
  g.Flush();
  g.Run();
  ASSERT_EQ(g.out.size(), 4u);
  EXPECT_EQ(*g.out[2].Get("a")->AsInt64(), 3);
  // Unchanged state: no re-emission.
  g.Flush();
  g.Run();
  EXPECT_EQ(g.out.size(), 4u);
}

TEST(Operators, UnionRenamesTable) {
  LocalGraph g;
  OpSpec u(0, OpKind::kUnion);
  u.Set("table", "merged");
  g.Build({u});
  g.Inject(Row(1, 1));
  g.Run();
  ASSERT_EQ(g.out.size(), 1u);
  EXPECT_EQ(g.out[0].table(), "merged");
}

TEST(Operators, EddyPassesConjunctionRegardlessOfPolicy) {
  for (const char* policy : {"fixed", "adaptive"}) {
    LocalGraph g;
    OpSpec eddy(0, OpKind::kEddy);
    eddy.SetInt("n", 2);
    eddy.SetExpr("mexpr0", *ParseExpr("a > 0"));
    eddy.SetExpr("mexpr1", *ParseExpr("b < 100"));
    eddy.Set("policy", policy);
    auto ids = g.Build({eddy});
    g.Inject(Row(1, 50));    // passes both
    g.Inject(Row(-1, 50));   // fails first
    g.Inject(Row(1, 200));   // fails second
    g.Run();
    EXPECT_EQ(g.out.size(), 1u) << policy;
    Operator* op = g.Op(ids[0]);
    ASSERT_NE(op, nullptr);
    EXPECT_GT(op->Metric("evaluations"), 0) << policy;
    EXPECT_EQ(op->Metric("no_such_metric"), -1);
  }
}

TEST(Operators, MaterializerMakesTupleScanableLocally) {
  SimPier::Options opts;
  opts.sim.seed = 3;
  opts.settle_time = 1 * kSecond;
  SimPier net(1, opts);

  QueryPlan plan;
  plan.query_id = 60001;
  plan.timeout = 30 * kSecond;
  OpGraph& g = plan.AddGraph();
  g.dissem = DissemKind::kLocal;
  OpSpec& src = g.AddOp(OpKind::kSource);
  src.SetInt("inject", 1);
  uint32_t src_id = src.id;
  OpSpec& mat = g.AddOp(OpKind::kMaterializer);
  mat.Set("ns", "mat_table");
  mat.SetStrings("key", {"a"});
  mat.SetInt("drop_on_close", 0);
  g.Connect(src_id, mat.id, 0);

  ASSERT_TRUE(net.qp(0)->SubmitQuery(plan, [](const Tuple&) {}).ok());
  net.RunFor(100 * kMillisecond);
  ASSERT_TRUE(
      net.qp(0)->executor()->InjectTuple(plan.query_id, g.id, src_id, Row(7, 8)).ok());
  net.RunFor(100 * kMillisecond);
  EXPECT_EQ(net.dht(0)->objects()->NamespaceObjects("mat_table"), 1u);
}

TEST(Operators, UnknownOpKindIsRejectedNotFatal) {
  OpSpec bogus(1, static_cast<OpKind>(200));
  auto op = MakeOperator(bogus);
  EXPECT_FALSE(op.ok());
}

TEST(Operators, BadParamsRejectedAtBuild) {
  // A graph whose operator fails Init must be rejected by Build, and the
  // node must keep running (the executor logs and skips it).
  SimPier::Options opts;
  opts.sim.seed = 4;
  opts.settle_time = 1 * kSecond;
  SimPier net(1, opts);
  QueryPlan plan;
  plan.query_id = 60002;
  plan.timeout = 5 * kSecond;
  OpGraph& g = plan.AddGraph();
  g.dissem = DissemKind::kLocal;
  OpSpec& scan = g.AddOp(OpKind::kScan);  // missing ns param
  (void)scan;
  auto qid = net.qp(0)->SubmitQuery(plan, [](const Tuple&) {});
  EXPECT_TRUE(qid.ok()) << "submission survives";
  net.RunFor(kSecond);
  EXPECT_EQ(net.qp(0)->executor()->FindOp(plan.query_id, g.id, 1), nullptr)
      << "bad graph was not instantiated";
}

TEST(Operators, MalformedStoredObjectsAreSkippedByScan) {
  // Garbage bytes published into a table namespace must not break queries
  // over that table (§3.3.4 best-effort).
  SimPier::Options opts;
  opts.sim.seed = 5;
  opts.settle_time = 6 * kSecond;
  SimPier net(4, opts);
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("junkish").PartitionBy({"v"})).ok());
  Tuple good("junkish");
  good.Append("v", Value::Int64(1));
  ASSERT_TRUE(net.client(0)->Publish("junkish", good).ok());
  net.dht(1)->Put("junkish", "somekey", "sfx", "\xde\xad\xbe\xef garbage",
                  60 * kSecond);
  net.RunFor(2 * kSecond);

  auto q = net.client(2)->Query(Sql("SELECT * FROM junkish TIMEOUT 5s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->Collect().size(), 1u)
      << "the good tuple arrives, the garbage is dropped";
}

// ---------------------------------------------------------------------------
// Batch vs scalar equivalence: the same randomized stream through the same
// middle graph twice — once injected tuple-at-a-time, once as TupleBatches
// (the assembler rolls batches on schema changes, exactly as the runtime's
// decode path does). The answer streams must be identical, byte for byte and
// in order, including across window flush boundaries.
// ---------------------------------------------------------------------------

std::vector<std::string> Enc(const std::vector<Tuple>& ts) {
  std::vector<std::string> out;
  out.reserve(ts.size());
  for (const Tuple& t : ts) out.push_back(t.Encode());
  return out;
}

void ExpectBatchScalarEquivalence(
    const std::vector<OpSpec>& middle,
    const std::vector<std::vector<Tuple>>& windows, size_t batch_rows = 64) {
  LocalGraph scalar(123), batch(123);
  scalar.Build(middle);
  batch.Build(middle);
  for (const std::vector<Tuple>& win : windows) {
    for (const Tuple& t : win) scalar.Inject(t);
    scalar.Run();
    scalar.Flush();
    scalar.Run();
    BatchAssembler assembler(batch_rows);
    for (const Tuple& t : win) assembler.Add(t);
    for (const TupleBatch& b : assembler.TakeBatches()) batch.InjectBatch(b);
    batch.Run();
    batch.Flush();
    batch.Run();
  }
  EXPECT_EQ(Enc(scalar.out), Enc(batch.out));
}

/// Randomized rows: duplicate-heavy int key `a` (sometimes missing, sometimes
/// mistyped as a string), optional int `b`, optional string `s` — exercising
/// the best-effort discard policy on both paths.
std::vector<Tuple> RandomRows(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Tuple t("t");
    uint64_t shape = rng.Uniform(12);
    if (shape != 0)
      t.Append("a", shape == 1
                        ? Value::String("ten")
                        : Value::Int64(static_cast<int64_t>(rng.Uniform(20))));
    if (rng.Uniform(10) != 0)
      t.Append("b", Value::Int64(static_cast<int64_t>(rng.Uniform(100))));
    if (rng.Uniform(3) == 0)
      t.Append("s", Value::String("u" + std::to_string(rng.Uniform(5))));
    rows.push_back(std::move(t));
  }
  return rows;
}

TEST(BatchEquivalence, SelectionProjectionDupElimChain) {
  OpSpec sel(0, OpKind::kSelection);
  sel.SetExpr("pred", *ParseExpr("a < 15"));
  OpSpec proj(0, OpKind::kProjection);
  proj.SetStrings("cols", {"a", "s"});
  proj.Set("out0", "twice");
  proj.SetExpr("expr0", *ParseExpr("a * 2"));
  OpSpec dedup(0, OpKind::kDupElim);
  ExpectBatchScalarEquivalence({sel, proj, dedup}, {RandomRows(71, 400)});
}

TEST(BatchEquivalence, GroupByAcrossWindowBoundaries) {
  OpSpec agg(0, OpKind::kGroupBy);
  agg.SetStrings("keys", {"a"});
  agg.Set("aggs", "count::n,sum:b:total,min:b:lo");
  // Three tumbling windows (Flush between them): per-window group answers
  // must agree, not just the final state.
  ExpectBatchScalarEquivalence(
      {agg}, {RandomRows(72, 150), RandomRows(73, 150), RandomRows(74, 150)});
}

TEST(BatchEquivalence, EddyDrawsIdenticalRoutingDecisions) {
  for (const char* policy : {"fixed", "adaptive"}) {
    OpSpec eddy(0, OpKind::kEddy);
    eddy.SetInt("n", 2);
    eddy.SetExpr("mexpr0", *ParseExpr("a > 5"));
    eddy.SetExpr("mexpr1", *ParseExpr("b < 80"));
    eddy.Set("policy", policy);
    ExpectBatchScalarEquivalence({eddy}, {RandomRows(75, 300)});
  }
}

TEST(BatchEquivalence, QueueThenLimitStopsAtTheSameRow) {
  OpSpec q(0, OpKind::kQueue);
  OpSpec lim(0, OpKind::kLimit);
  lim.SetInt("k", 37);
  ExpectBatchScalarEquivalence({q, lim}, {RandomRows(76, 200)});
}

TEST(BatchEquivalence, SymHashJoinMixedTableStream) {
  // An interleaved two-table stream through the join's single-input mode:
  // batches roll on every table switch, so the batch path sees many short
  // batches routed whole to the correct side.
  Rng rng(77);
  std::vector<Tuple> rows;
  for (int i = 0; i < 300; ++i) {
    if (rng.Uniform(2) == 0) {
      Tuple r("r");
      r.Append("x", Value::Int64(static_cast<int64_t>(rng.Uniform(40))));
      r.Append("a", Value::Int64(i));
      rows.push_back(std::move(r));
    } else {
      Tuple s("s");
      s.Append("y", Value::Int64(static_cast<int64_t>(rng.Uniform(40))));
      s.Append("b", Value::Int64(i));
      rows.push_back(std::move(s));
    }
  }
  OpSpec shj(0, OpKind::kSymHashJoin);
  shj.Set("l_key", "x");
  shj.Set("r_key", "y");
  shj.Set("l_table", "r");
  shj.Set("r_table", "s");
  ExpectBatchScalarEquivalence({shj}, {rows}, /*batch_rows=*/32);
}

TEST(BatchEquivalence, ReplicatedScanMergeStillDeliversEachRowOnce) {
  // k = 3 placement: every row exists on its owner plus two successors, and
  // the scan-time replica merge must still deliver each exactly once now
  // that scan results travel as batches.
  SimPier::Options opts;
  opts.sim.seed = 29;
  opts.seed_routing = true;
  SimPier net(8, opts);
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("rv").PartitionBy({"id"}).Replicas(3))
                  .ok());
  std::vector<std::string> published;
  for (int i = 0; i < 24; ++i) {
    Tuple e("rv");
    e.Append("id", Value::Int64(i));
    e.Append("v", Value::String("p" + std::to_string(i)));
    ASSERT_TRUE(net.client(i % 8)->Publish("rv", e).ok());
    published.push_back(e.Encode());
  }
  net.RunFor(3 * kSecond);

  auto q = net.client(0)->Query(Sql("SELECT * FROM rv TIMEOUT 6s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<std::string> got;
  q->OnTuple([&](const Tuple& t) { got.push_back(t.Encode()); });
  net.RunFor(8 * kSecond);

  std::sort(published.begin(), published.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, published)
      << "replica merge under batch delivery lost or double-counted rows";
}

}  // namespace
}  // namespace pier
