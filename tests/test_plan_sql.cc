// Tests for the plan layer: opgraph validation and wire round trips, the SQL
// compiler's plan shapes, UFL parsing, and aggregate-state algebra. The two
// front ends are exercised through PierClient::Compile, so they see exactly
// the catalog-derived metadata applications see.

#include <gtest/gtest.h>

#include "qp/agg_state.h"
#include "qp/opgraph.h"
#include "qp/sim_pier.h"
#include "util/logging.h"
#include "util/random.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// OpGraph / QueryPlan
// ---------------------------------------------------------------------------

TEST(OpGraph, ValidateCatchesStructuralErrors) {
  OpGraph g;
  g.id = 1;
  OpSpec& scan = g.AddOp(OpKind::kScan);
  scan.Set("ns", "t");
  uint32_t scan_id = scan.id;
  OpSpec& res = g.AddOp(OpKind::kResult);
  g.Connect(scan_id, res.id);
  EXPECT_TRUE(g.Validate().ok());

  OpGraph bad = g;
  bad.Connect(99, 1);
  EXPECT_FALSE(bad.Validate().ok()) << "unknown endpoint";

  OpGraph loop = g;
  loop.Connect(scan_id, scan_id);
  EXPECT_FALSE(loop.Validate().ok()) << "self loop";

  OpGraph feed = g;
  feed.Connect(res.id, scan_id);
  EXPECT_FALSE(feed.Validate().ok()) << "access method with inputs";
}

TEST(OpGraph, JoinArityChecked) {
  OpGraph g;
  g.id = 1;
  OpSpec& a = g.AddOp(OpKind::kSource);
  uint32_t a_id = a.id;
  OpSpec& j = g.AddOp(OpKind::kSymHashJoin);
  j.Set("l_key", "x");
  j.Set("r_key", "y");
  uint32_t j_id = j.id;
  g.Connect(a_id, j_id, 0);
  EXPECT_FALSE(g.Validate().ok()) << "one input is not enough";
  OpSpec& b = g.AddOp(OpKind::kSource);
  g.Connect(b.id, j_id, 1);
  EXPECT_TRUE(g.Validate().ok());
  // Mixed-stream mode accepts a single input.
  OpGraph m;
  m.id = 2;
  OpSpec& src = m.AddOp(OpKind::kSource);
  uint32_t src_id = src.id;
  OpSpec& mj = m.AddOp(OpKind::kSymHashJoin);
  mj.Set("l_key", "x");
  mj.Set("r_key", "y");
  mj.Set("l_table", "l");
  mj.Set("r_table", "r");
  m.Connect(src_id, mj.id, 0);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(QueryPlan, WireRoundTrip) {
  QueryPlan plan;
  plan.query_id = 777;
  plan.timeout = 12 * kSecond;
  plan.continuous = true;
  plan.window = 3 * kSecond;
  plan.generation = 4;
  plan.replan = true;
  plan.deadline_us = 99 * kSecond;  // absolute instant, rides every hop
  plan.successors = {NetAddress{7, 5000}, NetAddress{9, 5000}};
  plan.proxy_epoch = 1;
  plan.catchup_floor_us = 55 * kSecond;
  plan.lease_period_us = 2 * kSecond;
  OpGraph& g = plan.AddGraph();
  g.dissem = DissemKind::kEquality;
  g.dissem_ns = "t";
  g.dissem_key = "I5|";
  g.flush_stage = 2;
  OpSpec& scan = g.AddOp(OpKind::kScan);
  scan.Set("ns", "t");
  OpSpec& sel = g.AddOp(OpKind::kSelection);
  sel.SetExpr("pred", *ParseExpr("v > 3"));
  uint32_t sel_id = sel.id;
  OpSpec& res = g.AddOp(OpKind::kResult);
  g.Connect(1, sel_id, 0);
  g.Connect(sel_id, res.id, 0);

  Result<QueryPlan> back = QueryPlan::Decode(plan.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->query_id, 777u);
  EXPECT_TRUE(back->continuous);
  EXPECT_EQ(back->window, 3 * kSecond);
  EXPECT_EQ(back->generation, 4u);
  EXPECT_TRUE(back->replan);
  EXPECT_EQ(back->deadline_us, 99 * kSecond);
  ASSERT_EQ(back->successors.size(), 2u);
  EXPECT_EQ(back->successors[0], (NetAddress{7, 5000}));
  EXPECT_EQ(back->successors[1], (NetAddress{9, 5000}));
  EXPECT_EQ(back->proxy_epoch, 1u);
  EXPECT_EQ(back->catchup_floor_us, 55 * kSecond);
  EXPECT_EQ(back->lease_period_us, 2 * kSecond);
  EXPECT_FALSE(back->cancelled);
  ASSERT_EQ(back->graphs.size(), 1u);
  const OpGraph& bg = back->graphs[0];
  EXPECT_EQ(bg.dissem, DissemKind::kEquality);
  EXPECT_EQ(bg.dissem_key, "I5|");
  EXPECT_EQ(bg.flush_stage, 2);
  ASSERT_EQ(bg.ops.size(), 3u);
  EXPECT_EQ(bg.edges.size(), 2u);
  Result<ExprPtr> pred = bg.FindOp(sel_id)->GetExpr("pred");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ((*pred)->ToString(), "(v > 3)");
}

TEST(QueryPlan, DecodeRejectsCorruption) {
  QueryPlan plan;
  plan.query_id = 1;
  plan.AddGraph().AddOp(OpKind::kScan).Set("ns", "t");
  std::string wire = plan.Encode();
  EXPECT_FALSE(QueryPlan::Decode(wire + "zz").ok());
  EXPECT_FALSE(QueryPlan::Decode(wire.substr(0, wire.size() / 2)).ok());
  EXPECT_FALSE(QueryPlan::Decode("").ok());
}

// ---------------------------------------------------------------------------
// SQL compiler plan shapes (through the client façade)
// ---------------------------------------------------------------------------

/// A one-node network whose catalog declares t (partitioned by k) and
/// s (partitioned by y) — the former hand-written SqlOptions hints, now
/// derived. Compile() never submits, so one shared instance is enough.
PierClient* Client() {
  static SimPier* net = [] {
    SimPier::Options opts;
    opts.sim.seed = 1;
    opts.settle_time = 1 * kSecond;
    auto* n = new SimPier(1, opts);
    PIER_CHECK(n->catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
    PIER_CHECK(n->catalog()->Register(TableSpec("s").PartitionBy({"y"})).ok());
    return n;
  }();
  return net->client(0);
}

int CountOps(const OpGraph& g, OpKind kind) {
  int n = 0;
  for (const OpSpec& op : g.ops) n += op.kind == kind;
  return n;
}

TEST(Sql, SimpleSelectIsOneBroadcastGraph) {
  auto plan =
      Client()->Compile(Sql("SELECT a, b FROM t WHERE a > 3 TIMEOUT 5s"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 1u);
  EXPECT_EQ(plan->graphs[0].dissem, DissemKind::kBroadcast);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kScan), 1);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kSelection), 1);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kProjection), 1);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kResult), 1);
  EXPECT_EQ(plan->timeout, 5 * kSecond);
}

TEST(Sql, EqualityOnPartitionKeyTargetsDissemination) {
  auto plan = Client()->Compile(Sql("SELECT * FROM t WHERE k = 9"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphs[0].dissem, DissemKind::kEquality);
  EXPECT_EQ(plan->graphs[0].dissem_ns, "t");
  // Equality on a non-partition column broadcasts.
  auto plan2 = Client()->Compile(Sql("SELECT * FROM t WHERE a = 9"));
  EXPECT_EQ(plan2->graphs[0].dissem, DissemKind::kBroadcast);
}

TEST(Sql, SelectStarSkipsProjection) {
  auto plan = Client()->Compile(Sql("SELECT * FROM t"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kProjection), 0);
}

TEST(Sql, FlatAggregationIsTwoStageRehash) {
  auto plan = Client()->Compile(
      Sql("SELECT k, count(*) AS c, sum(v) AS sv FROM t GROUP BY k"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 2u);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kGroupBy), 1);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kPut), 1);
  EXPECT_EQ(CountOps(plan->graphs[1], OpKind::kGroupBy), 1);
  EXPECT_EQ(plan->graphs[0].FindOp(2)->GetString("mode"), "partial");
  EXPECT_EQ(plan->graphs[1].flush_stage, 1) << "finals flush after partials";
}

TEST(Sql, HierAggregationIsSingleGraph) {
  auto plan = Client()->Compile(
      Sql("SELECT k, count(*) AS c FROM t GROUP BY k").WithAggStrategy("hier"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->graphs.size(), 1u);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kHierAgg), 1);
}

TEST(Sql, OrderByLimitAddsCollectorStage) {
  auto plan = Client()->Compile(Sql(
      "SELECT k, count(*) AS c FROM t GROUP BY k ORDER BY c DESC LIMIT 4"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->graphs.size(), 3u) << "partial, final+put, collector";
  const OpGraph& collector = plan->graphs[2];
  EXPECT_EQ(collector.dissem, DissemKind::kEquality);
  EXPECT_EQ(CountOps(collector, OpKind::kTopK), 1);
  for (const OpSpec& op : collector.ops) {
    if (op.kind == OpKind::kTopK) {
      EXPECT_EQ(op.GetInt("k", 0), 4);
      EXPECT_EQ(op.GetStrings("dedup"), std::vector<std::string>{"k"});
    }
  }
}

TEST(Sql, JoinPicksFetchMatchesWhenInnerIndexed) {
  auto plan = Client()->Compile(
      Sql("SELECT * FROM t a, s b WHERE a.k = b.y AND a.v > 1"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 1u);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kFetchMatches), 1);
  EXPECT_EQ(CountOps(plan->graphs[0], OpKind::kSelection), 1)
      << "outer filter pushed down";
}

TEST(Sql, JoinFallsBackToRehashOtherwise) {
  auto plan =
      Client()->Compile(Sql("SELECT * FROM t a, s b WHERE a.v = b.w"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 3u);
  EXPECT_EQ(CountOps(plan->graphs[2], OpKind::kSymHashJoin), 1);
}

TEST(Sql, RejectsMalformedQueries) {
  auto bad = [](const std::string& text) {
    return !Client()->Compile(Sql(text)).ok();
  };
  EXPECT_TRUE(bad("FROM t"));
  EXPECT_TRUE(bad("SELECT FROM t"));
  EXPECT_TRUE(bad("SELECT * FROM"));
  EXPECT_TRUE(bad("SELECT * FROM a, b, c"));
  EXPECT_TRUE(bad("SELECT * FROM a, b WHERE a.x > b.y"))
      << "no equi-join predicate";
  EXPECT_TRUE(bad("SELECT * FROM t LIMIT 0"));
}

TEST(Sql, RejectsUnknownAggregates) {
  EXPECT_FALSE(Client()->Compile(Sql("SELECT med(v) FROM t")).ok());
  EXPECT_FALSE(Client()->Compile(Sql("SELECT median(v) FROM t GROUP BY k")).ok())
      << "holistic aggregates are unsupported";
  auto err = Client()->Compile(Sql("SELECT frob(v) AS f FROM t"));
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("unknown aggregate"), std::string::npos)
      << err.status().ToString();
}

TEST(Sql, RejectsMalformedDurations) {
  auto bad = [](const std::string& text) {
    return !Client()->Compile(Sql(text)).ok();
  };
  // TIMEOUT: negative, zero, bad suffix, non-numeric.
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT -5s"));
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT 0s"));
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT 5x"));
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT soon"));
  // WINDOW: same duration grammar. WINDOW 0 in particular must be an
  // InvalidArgument, not a per-millisecond flush timer at execution time.
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT 5s WINDOW -1s CONTINUOUS"));
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT 5s WINDOW 0 CONTINUOUS"));
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT 5s WINDOW 0ms CONTINUOUS"));
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT 5s WINDOW 0s CONTINUOUS"));
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT 5s WINDOW 2parsecs CONTINUOUS"));
  EXPECT_TRUE(bad("SELECT * FROM t TIMEOUT 5s WINDOW abc CONTINUOUS"));
  {
    Status s = Client()
                   ->Compile(Sql("SELECT * FROM t TIMEOUT 5s WINDOW 0 "
                                 "CONTINUOUS"))
                   .status();
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  }
  // Control: the well-formed versions compile.
  EXPECT_TRUE(Client()->Compile(Sql("SELECT * FROM t TIMEOUT 5s")).ok());
  EXPECT_TRUE(Client()
                  ->Compile(Sql("SELECT * FROM t TIMEOUT 5s WINDOW 500ms "
                                "CONTINUOUS"))
                  .ok());
}

TEST(Sql, DistinctQueriesGetDistinctIds) {
  auto a = Client()->Compile(Sql("SELECT * FROM t"));
  auto b = Client()->Compile(Sql("SELECT * FROM t"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->query_id, b->query_id);
}

// ---------------------------------------------------------------------------
// UFL
// ---------------------------------------------------------------------------

TEST(Ufl, ParsesFullProgram) {
  auto plan = Client()->Compile(Ufl(R"(
    # a two-stage aggregation, by hand
    query { timeout = 9s; window = 2s; continuous; }
    graph g1 broadcast {
      src: scan     [ns=events, watch=1];
      sel: selection[pred="sev >= 3"];
      agg: groupby  [keys=src, aggs="count::cnt", mode=partial];
      out: put      [ns=stage1, key=src];
      src -> sel -> agg -> out;
    }
    graph g2 stage(1) {
      in:  newdata [ns=stage1];
      fin: groupby [keys=src, aggs="count::cnt", mode=final];
      res: result;
      in -> fin -> res;
    }
  )"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->timeout, 9 * kSecond);
  EXPECT_TRUE(plan->continuous);
  ASSERT_EQ(plan->graphs.size(), 2u);
  EXPECT_EQ(plan->graphs[0].ops.size(), 4u);
  EXPECT_EQ(plan->graphs[0].edges.size(), 3u);
  EXPECT_EQ(plan->graphs[1].flush_stage, 1);
  Result<ExprPtr> pred = plan->graphs[0].FindOp(2)->GetExpr("pred");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ((*pred)->ToString(), "(sev >= 3)");
}

TEST(Ufl, WindowAndReplanOptions) {
  // replan=auto is accepted and surfaces on the plan; WINDOW 0 is rejected
  // with InvalidArgument just like in SQL.
  auto plan = Client()->Compile(Ufl(R"(
    query { timeout = 5s; window = 1s; continuous; replan = auto; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->replan);

  auto off = Client()->Compile(Ufl(R"(
    query { timeout = 5s; continuous; replan = off; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"));
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_FALSE(off->replan);

  EXPECT_FALSE(Client()
                   ->Compile(Ufl(R"(
    query { timeout = 5s; continuous; replan = maybe; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"))
                   .ok());

  Status zero = Client()
                    ->Compile(Ufl(R"(
    query { timeout = 5s; window = 0ms; continuous; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"))
                    .status();
  EXPECT_EQ(zero.code(), StatusCode::kInvalidArgument) << zero.ToString();
}

TEST(Ufl, DeadlineRoundTrips) {
  // deadline_us is an absolute instant in raw microseconds (SubmitQuery
  // normally stamps it; the UFL seam exists so serialized plans round-trip).
  auto plan = Client()->Compile(Ufl(R"(
    query { timeout = 5s; deadline_us = 1234567; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->deadline_us, 1234567);

  EXPECT_FALSE(Client()
                   ->Compile(Ufl(R"(
    query { timeout = 5s; deadline_us = -3; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"))
                   .ok());
}

TEST(Ufl, SuccessorsLeaseAndCatchupFloorRoundTrip) {
  // The churn-lifecycle fields ride UFL like deadline_us does: successors
  // as a host:port chain (adoption order), lease as a duration, the
  // catch-up floor as a raw instant.
  auto plan = Client()->Compile(Ufl(R"(
    query { timeout = 5s; continuous; window = 1s;
            successors = 7:5000, 9:5001; lease = 2s;
            catchup_floor_us = 777; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->successors.size(), 2u);
  EXPECT_EQ(plan->successors[0], (NetAddress{7, 5000}));
  EXPECT_EQ(plan->successors[1], (NetAddress{9, 5001}));
  EXPECT_EQ(plan->lease_period_us, 2 * kSecond);
  EXPECT_EQ(plan->catchup_floor_us, 777);

  // Malformed successors fail the parse, not the network.
  EXPECT_FALSE(Client()
                   ->Compile(Ufl(R"(
    query { timeout = 5s; successors = nonsense; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"))
                   .ok());
  EXPECT_FALSE(Client()
                   ->Compile(Ufl(R"(
    query { timeout = 5s; successors = 7:99999; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )"))
                   .ok());
}

TEST(Executor, EffectiveWindowDefaultsAndFloors) {
  QueryPlan p;
  p.continuous = true;
  p.timeout = 40 * kSecond;
  p.window = 0;  // windowless (only reachable through hand-built plans)
  EXPECT_EQ(QueryExecutor::EffectiveWindow(p), QueryExecutor::kDefaultWindow);
  p.timeout = 80 * kMillisecond;  // short-lived query: default shrinks
  EXPECT_EQ(QueryExecutor::EffectiveWindow(p), 20 * kMillisecond);
  p.timeout = 20 * kMillisecond;  // ...but never below the floor
  EXPECT_EQ(QueryExecutor::EffectiveWindow(p), QueryExecutor::kMinWindow);
  p.timeout = 40 * kSecond;
  p.window = 1 * kMillisecond;  // explicit degenerate window: floored
  EXPECT_EQ(QueryExecutor::EffectiveWindow(p), QueryExecutor::kMinWindow);
  p.window = 2 * kSecond;  // sane explicit windows pass through
  EXPECT_EQ(QueryExecutor::EffectiveWindow(p), 2 * kSecond);
}

TEST(Ufl, JoinPortsAndDissemination) {
  auto plan = Client()->Compile(Ufl(R"(
    query { timeout = 5s; }
    graph g equality(t, "I5|") {
      a: scan [ns=l];
      b: scan [ns=r];
      j: shjoin [l_key=x, r_key=y];
      o: result;
      a -> j:0;
      b -> j:1;
      j -> o;
    }
  )"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->graphs[0].dissem, DissemKind::kEquality);
  EXPECT_EQ(plan->graphs[0].dissem_key, "I5|");
  bool saw_port1 = false;
  for (const GraphEdge& e : plan->graphs[0].edges) saw_port1 |= e.port == 1;
  EXPECT_TRUE(saw_port1);
}

TEST(Ufl, ReportsErrorsWithLineNumbers) {
  auto bad = Client()->Compile(Ufl("graph g broadcast { x: bogus_operator; }"));
  ASSERT_FALSE(bad.ok());
  auto bad2 =
      Client()->Compile(Ufl("graph g broadcast { a: scan [ns=t]; a -> b; }"));
  ASSERT_FALSE(bad2.ok());
  EXPECT_NE(bad2.status().message().find("unknown label"), std::string::npos);
  EXPECT_FALSE(Client()->Compile(Ufl("")).ok());
}

// ---------------------------------------------------------------------------
// Aggregate state algebra
// ---------------------------------------------------------------------------

TEST(AggState, ParseSpecs) {
  auto specs = ParseAggSpecs("count::cnt,sum:bytes:total,avg:lat:mean");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 3u);
  EXPECT_EQ((*specs)[0].func, AggFunc::kCount);
  EXPECT_TRUE((*specs)[0].col.empty());
  EXPECT_EQ((*specs)[1].col, "bytes");
  EXPECT_EQ(FormatAggSpecs(*specs), "count::cnt,sum:bytes:total,avg:lat:mean");
  EXPECT_FALSE(ParseAggSpecs("sum::x").ok()) << "sum needs a column";
  EXPECT_FALSE(ParseAggSpecs("count:").ok()) << "missing alias";
  EXPECT_FALSE(ParseAggSpecs("median:x:m").ok()) << "holistic not supported";
}

TEST(AggState, MergeIsEquivalentToSingleStream) {
  // Property: folding a stream in two halves and merging equals folding all.
  AggSpec spec{AggFunc::kSum, "v", "s"};
  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> values;
    for (int i = 0; i < 20; ++i)
      values.push_back(static_cast<int64_t>(rng.Uniform(1000)) - 500);
    AggState all, left, right;
    for (size_t i = 0; i < values.size(); ++i) {
      Tuple t("t", {{"v", Value::Int64(values[i])}});
      all.Update(spec, t);
      (i < values.size() / 2 ? left : right).Update(spec, t);
    }
    left.Merge(right);
    for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kMin,
                      AggFunc::kMax, AggFunc::kAvg}) {
      EXPECT_TRUE(left.Finalize(f).LooseEquals(all.Finalize(f)))
          << AggFuncName(f) << " trial " << trial;
    }
  }
}

TEST(AggState, PartialColumnsRoundTrip) {
  AggSpec spec{AggFunc::kAvg, "v", "m"};
  AggState s;
  for (int v : {1, 2, 3, 10}) {
    Tuple t("t", {{"v", Value::Int64(v)}});
    s.Update(spec, t);
  }
  Tuple carrier("p");
  s.ToPartialColumns("m", &carrier);
  AggState back;
  ASSERT_TRUE(back.FromPartialColumns(carrier, "m"));
  EXPECT_EQ(back.count(), 4);
  EXPECT_TRUE(back.Finalize(AggFunc::kAvg).LooseEquals(Value::Double(4.0)));
  EXPECT_TRUE(back.Finalize(AggFunc::kMax).LooseEquals(Value::Int64(10)));
  AggState missing;
  EXPECT_FALSE(missing.FromPartialColumns(Tuple("x"), "m"));
}

TEST(AggState, SkipsMissingAndNullColumns) {
  AggSpec spec{AggFunc::kSum, "v", "s"};
  AggState s;
  s.Update(spec, Tuple("t", {{"other", Value::Int64(5)}}));
  s.Update(spec, Tuple("t", {{"v", Value::Null()}}));
  s.Update(spec, Tuple("t", {{"v", Value::Int64(3)}}));
  EXPECT_EQ(s.count(), 1);
  EXPECT_TRUE(s.Finalize(AggFunc::kSum).LooseEquals(Value::Int64(3)));
}

}  // namespace
}  // namespace pier
