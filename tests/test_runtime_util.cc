// Unit and property tests for the runtime substrate (event loop, simulated
// network, UdpCC) and the utility layer (wire codec, Bloom filter, RNG/Zipf,
// hashing).

#include <gtest/gtest.h>

#include <map>

#include "runtime/event_loop.h"
#include "runtime/sim_runtime.h"
#include "runtime/udpcc.h"
#include "util/bloom.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/wire.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

TEST(EventLoop, FiresInTimeOrderWithStableTies) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(20, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(10, [&] { order.push_back(2); });  // same time: FIFO by seq
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 20);
}

TEST(EventLoop, CancelIsBestEffort) {
  EventLoop loop;
  int fired = 0;
  uint64_t a = loop.ScheduleAt(5, [&] { fired++; });
  loop.ScheduleAt(6, [&] { fired++; });
  loop.Cancel(a);
  loop.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  loop.Cancel(a);  // double-cancel: no-op
  loop.Cancel(12345678);  // unknown token: no-op
}

TEST(EventLoop, RunUntilAdvancesClockExactly) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAt(100, [&] { fired++; });
  loop.ScheduleAt(300, [&] { fired++; });
  EXPECT_EQ(loop.RunUntil(200), 1u);
  EXPECT_EQ(loop.now(), 200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, HandlersMayScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) loop.ScheduleAfter(1, chain);
  };
  loop.ScheduleAfter(1, chain);
  loop.RunUntilIdle();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.ScheduleAt(50, [] {});
  loop.RunUntilIdle();
  bool fired = false;
  loop.ScheduleAt(10, [&] { fired = true; });  // in the past
  loop.RunUntilIdle();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), 50) << "clock must never run backwards";
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(Wire, VarintBoundaries) {
  for (uint64_t v : std::vector<uint64_t>{0, 1, 127, 128, 16383, 16384,
                                          UINT64_MAX}) {
    WireWriter w;
    w.PutVarint(v);
    WireReader r(w.data());
    uint64_t back;
    ASSERT_TRUE(r.GetVarint(&back).ok()) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(Wire, TruncationYieldsCorruptionNotUB) {
  WireWriter w;
  w.PutU64(42);
  w.PutBytes("payload");
  std::string full = std::move(w).data();
  for (size_t len = 0; len < full.size(); ++len) {
    WireReader r(std::string_view(full).substr(0, len));
    uint64_t x;
    std::string_view s;
    Status st = r.GetU64(&x);
    if (st.ok()) st = r.GetBytes(&s);
    EXPECT_FALSE(st.ok()) << "prefix of length " << len << " must not parse";
  }
}

TEST(Wire, MixedRoundTripProperty) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    WireWriter w;
    std::vector<uint64_t> u64s;
    std::vector<std::string> blobs;
    int n = 1 + static_cast<int>(rng.Uniform(10));
    for (int i = 0; i < n; ++i) {
      uint64_t v = rng.Next();
      u64s.push_back(v);
      w.PutU64(v);
      std::string b;
      for (uint64_t j = rng.Uniform(32); j > 0; --j)
        b.push_back(static_cast<char>(rng.Uniform(256)));
      blobs.push_back(b);
      w.PutBytes(b);
    }
    WireReader r(w.data());
    for (int i = 0; i < n; ++i) {
      uint64_t v;
      std::string b;
      ASSERT_TRUE(r.GetU64(&v).ok());
      ASSERT_TRUE(r.GetBytes(&b).ok());
      EXPECT_EQ(v, u64s[i]);
      EXPECT_EQ(b, blobs[i]);
    }
    EXPECT_TRUE(r.AtEnd());
  }
}

// ---------------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------------

TEST(Bloom, NoFalseNegativesAndBoundedFalsePositives) {
  BloomFilter f(1000, 0.01);
  for (int i = 0; i < 1000; ++i) f.Add("member" + std::to_string(i));
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(f.MayContain("member" + std::to_string(i)));
  int fp = 0;
  for (int i = 0; i < 10000; ++i) fp += f.MayContain("other" + std::to_string(i));
  EXPECT_LT(fp, 300) << "~1% target, allow 3x slack";
}

TEST(Bloom, SerializeRoundTripAndMerge) {
  BloomFilter a(4096, 3), b(4096, 3);
  a.Add("only-a");
  b.Add("only-b");
  Result<BloomFilter> back = BloomFilter::Deserialize(a.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->MayContain("only-a"));
  ASSERT_TRUE(back->Merge(b).ok());
  EXPECT_TRUE(back->MayContain("only-a"));
  EXPECT_TRUE(back->MayContain("only-b"));
  BloomFilter other_geometry(8192, 3);
  EXPECT_FALSE(back->Merge(other_geometry).ok());
  EXPECT_FALSE(BloomFilter::Deserialize("garbage").ok());
}

// ---------------------------------------------------------------------------
// RNG / Zipf / hashing
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeedAndForkIndependent) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
  Rng parent(9);
  Rng fork = parent.Fork();
  differs = false;
  for (int i = 0; i < 100; ++i) differs |= parent.Next() != fork.Next();
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Zipf, HeadDominatesAndPmfSumsToOne) {
  ZipfGenerator zipf(1000, 1.1);
  Rng rng(11);
  std::map<uint64_t, int> counts;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[50] * 5) << "rank 0 must dominate rank 50";
  EXPECT_GT(counts[0], kSamples / 20) << "head gets a large share";
  double mass = 0;
  for (uint64_t r = 0; r < 1000; ++r) mass += zipf.Pmf(r);
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Hash, StableAndSensitive) {
  // Values are part of the wire protocol: keys must hash identically on
  // every node, so the function must be deterministic across processes.
  EXPECT_EQ(Fnv1a64("chained-naming"), Fnv1a64("chained-naming"));
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_NE(HashNamespaceKey("ns", "key"), HashNamespaceKey("nsk", "ey"))
      << "namespace/key boundary must matter";
  EXPECT_NE(Mix64(1), Mix64(2));
}

// ---------------------------------------------------------------------------
// Simulation harness + UdpCC
// ---------------------------------------------------------------------------

struct Capture : UdpHandler {
  std::vector<std::pair<NetAddress, std::string>> got;
  void HandleUdp(const NetAddress& src, std::string_view p) override {
    got.emplace_back(src, std::string(p));
  }
};

TEST(SimHarness, UdpDeliversWithTopologyLatency) {
  SimOptions opts;
  opts.seed = 5;
  SimHarness sim(opts);
  sim.AddNodes(2);
  Capture rx;
  ASSERT_TRUE(sim.vri(1)->UdpListen(9, &rx).ok());
  ASSERT_TRUE(sim.vri(0)->UdpSend(9, sim.AddressOf(1, 9), "ping").ok());
  TimeUs before = sim.loop()->now();
  sim.loop()->RunUntilIdle();
  ASSERT_EQ(rx.got.size(), 1u);
  EXPECT_EQ(rx.got[0].second, "ping");
  EXPECT_GT(sim.loop()->now(), before) << "delivery takes nonzero latency";
}

TEST(SimHarness, FailedNodeReceivesNothingAndSendsNothing) {
  SimOptions opts;
  opts.seed = 6;
  SimHarness sim(opts);
  sim.AddNodes(3);
  Capture rx;
  ASSERT_TRUE(sim.vri(2)->UdpListen(9, &rx).ok());
  sim.FailNode(2);
  // The send itself is accepted; what the test asserts is that nothing is
  // DELIVERED to the dead node.
  (void)sim.vri(0)->UdpSend(9, sim.AddressOf(2, 9), "into the void");
  sim.loop()->RunUntilIdle();
  EXPECT_TRUE(rx.got.empty());
  EXPECT_FALSE(sim.IsAlive(2));
  EXPECT_EQ(sim.num_alive(), 2u);
}

TEST(SimHarness, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    SimOptions opts;
    opts.seed = seed;
    SimHarness sim(opts);
    sim.AddNodes(4);
    Capture rx;
    EXPECT_TRUE(sim.vri(3)->UdpListen(9, &rx).ok());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(
          sim.vri(i % 3)->UdpSend(9, sim.AddressOf(3, 9), std::to_string(i)).ok());
    }
    sim.loop()->RunUntilIdle();
    std::string log;
    for (auto& [src, p] : rx.got) log += std::to_string(src.host) + ":" + p + ";";
    return log + "@" + std::to_string(sim.loop()->now());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(SimHarness, TcpFramedRoundTrip) {
  SimOptions opts;
  opts.seed = 8;
  SimHarness sim(opts);
  sim.AddNodes(2);

  struct Server : TcpHandler {
    Vri* vri = nullptr;
    std::vector<std::string> got;
    void HandleTcpNew(uint64_t, const NetAddress&) override {}
    void HandleTcpData(uint64_t conn, std::string_view d) override {
      got.emplace_back(d);
      EXPECT_TRUE(vri->TcpWrite(conn, "ack:" + std::string(d)).ok());
    }
    void HandleTcpError(uint64_t) override {}
  } server;
  server.vri = sim.vri(1);

  struct Client : TcpHandler {
    std::vector<std::string> got;
    bool connected = false;
    void HandleTcpNew(uint64_t, const NetAddress&) override { connected = true; }
    void HandleTcpData(uint64_t, std::string_view d) override {
      got.emplace_back(d);
    }
    void HandleTcpError(uint64_t) override {}
  } client;

  ASSERT_TRUE(sim.vri(1)->TcpListen(7000, &server).ok());
  Result<uint64_t> conn = sim.vri(0)->TcpConnect(sim.AddressOf(1, 7000), &client);
  ASSERT_TRUE(conn.ok());
  sim.loop()->RunUntilIdle();
  ASSERT_TRUE(client.connected);
  ASSERT_TRUE(sim.vri(0)->TcpWrite(*conn, "query").ok());
  ASSERT_TRUE(sim.vri(0)->TcpWrite(*conn, "plan").ok());
  sim.loop()->RunUntilIdle();
  ASSERT_EQ(server.got, (std::vector<std::string>{"query", "plan"}));
  ASSERT_EQ(client.got, (std::vector<std::string>{"ack:query", "ack:plan"}));
}

TEST(UdpCc, ReliableDeliveryAndDuplicateSuppression) {
  SimOptions opts;
  opts.seed = 9;
  SimHarness sim(opts);
  sim.AddNodes(2);
  UdpCc a(sim.vri(0), 5000);
  UdpCc b(sim.vri(1), 5000);
  std::vector<std::string> received;
  b.set_message_handler([&](const NetAddress&, std::string_view p) {
    received.emplace_back(p);
  });
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    a.Send(sim.AddressOf(1, 5000), "m" + std::to_string(i),
           [&](const Status& s) { delivered += s.ok(); });
  }
  sim.RunFor(5 * kSecond);
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(received.size(), 20u);
  EXPECT_EQ(b.stats().duplicates_dropped, 0u);
}

TEST(UdpCc, SenderNotifiedWhenPeerIsDead) {
  SimOptions opts;
  opts.seed = 10;
  SimHarness sim(opts);
  sim.AddNodes(2);
  UdpCc a(sim.vri(0), 5000);
  sim.FailNode(1);
  Status failure = Status::Ok();
  bool called = false;
  a.Send(sim.AddressOf(1, 5000), "doomed", [&](const Status& s) {
    failure = s;
    called = true;
  });
  sim.RunFor(60 * kSecond);  // retries, then gives up
  EXPECT_TRUE(called);
  EXPECT_FALSE(failure.ok()) << "reliable-or-notify contract (§3.1.3)";
  EXPECT_GT(a.stats().retransmits, 0u);
}

TEST(SimHarness, ClockSkewBoundsHold) {
  SimOptions opts;
  opts.seed = 12;
  opts.max_clock_skew = 50 * kMillisecond;
  SimHarness sim(opts);
  sim.AddNodes(8);
  sim.loop()->RunUntil(kSecond);
  for (uint32_t i = 0; i < 8; ++i) {
    TimeUs diff = sim.vri(i)->Now() - sim.loop()->now();
    EXPECT_LE(diff, 50 * kMillisecond) << "node " << i;
    EXPECT_GE(diff, -50 * kMillisecond) << "node " << i;
  }
}

}  // namespace
}  // namespace pier
