// End-to-end query processing over a simulated PIER network, driven entirely
// through the PierClient façade: declare tables in the catalog, publish base
// tuples, submit SQL, receive answers at the proxy.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "qp/sim_pier.h"

namespace pier {
namespace {

SimPier::Options PierOptions(uint64_t seed = 7) {
  SimPier::Options opts;
  opts.sim.seed = seed;
  opts.seed_routing = true;
  opts.settle_time = 8 * kSecond;
  return opts;
}

/// Publish `n` rows of a simple table t(k, v, s) spread across the nodes:
/// k = row index, v = k * 10, s = "row<k>". Partitioned by k.
void PublishRows(SimPier* net, int n, const std::string& table = "t") {
  ASSERT_TRUE(
      net->catalog()->Register(TableSpec(table).PartitionBy({"k"})).ok());
  for (int i = 0; i < n; ++i) {
    Tuple t(table);
    t.Append("k", Value::Int64(i));
    t.Append("v", Value::Int64(i * 10));
    t.Append("s", Value::String("row" + std::to_string(i)));
    ASSERT_TRUE(net->client(i % net->size())->Publish(table, t).ok());
  }
}

/// Register ev(src, ...) partitioned by src and publish `rows` of it.
void PublishEvents(SimPier* net, const std::vector<Tuple>& rows) {
  ASSERT_TRUE(
      net->catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(net->client(i % net->size())->Publish("ev", rows[i]).ok());
  }
}

TEST(QpE2E, SelectWhereStreamsMatchingRows) {
  SimPier net(10, PierOptions());
  PublishRows(&net, 20);
  net.RunFor(3 * kSecond);

  auto q = net.client(3)->Query(
      Sql("SELECT k, v FROM t WHERE v >= 150 TIMEOUT 10s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  std::vector<int64_t> ks;
  bool done = false;
  q->OnTuple([&](const Tuple& t) {
    ASSERT_TRUE(t.Has("k"));
    ASSERT_TRUE(t.Has("v"));
    EXPECT_FALSE(t.Has("s")) << "projection should drop s";
    ks.push_back(t.Get("k")->int64_unchecked());
  });
  q->OnDone([&]() { done = true; });

  EXPECT_TRUE(q->Wait().ok());
  EXPECT_TRUE(done);
  EXPECT_TRUE(q->done());
  std::sort(ks.begin(), ks.end());
  // v >= 150 -> k in {15..19}.
  EXPECT_EQ(ks, (std::vector<int64_t>{15, 16, 17, 18, 19}));
  EXPECT_EQ(q->stats().tuples, 5u);
  EXPECT_GE(q->stats().first_tuple_latency, 0);
  EXPECT_LE(q->stats().first_tuple_latency, q->stats().last_tuple_latency);
}

TEST(QpE2E, EqualityPredicateUsesTargetedDissemination) {
  SimPier net(12, PierOptions(11));
  PublishRows(&net, 24);
  net.RunFor(3 * kSecond);

  // Compile() exposes the plan for shape assertions; the same plan is then
  // submitted through the native-plan entry point.
  auto plan =
      net.client(0)->Compile(Sql("SELECT * FROM t WHERE k = 7 TIMEOUT 8s"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 1u);
  EXPECT_EQ(plan->graphs[0].dissem, DissemKind::kEquality);

  auto q = net.client(0)->Query(std::move(*plan));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("k")->int64_unchecked(), 7);
  EXPECT_EQ(rows[0].Get("v")->int64_unchecked(), 70);
}

TEST(QpE2E, FlatAggregationCountsPerGroup) {
  SimPier net(10, PierOptions(23));
  // 30 events across 3 sources with known counts: src0 x 15, src1 x 10, src2 x 5.
  std::vector<Tuple> rows;
  int counts[3] = {15, 10, 5};
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < counts[s]; ++i) {
      Tuple t("ev");
      t.Append("src", Value::String("src" + std::to_string(s)));
      t.Append("bytes", Value::Int64(100 + i));
      rows.push_back(std::move(t));
    }
  }
  PublishEvents(&net, rows);
  net.RunFor(3 * kSecond);

  auto q = net.client(2)->Query(
      Sql("SELECT src, count(*) AS cnt, sum(bytes) AS total FROM ev "
          "GROUP BY src TIMEOUT 12s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  std::map<std::string, int64_t> got;
  std::map<std::string, int64_t> sums;
  q->OnTuple([&](const Tuple& t) {
    ASSERT_TRUE(t.Has("src"));
    got[std::string(*t.Get("src")->AsString())] =
        t.Get("cnt")->int64_unchecked();
    sums[std::string(*t.Get("src")->AsString())] =
        t.Get("total")->int64_unchecked();
  });
  EXPECT_TRUE(q->Wait().ok());

  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got["src0"], 15);
  EXPECT_EQ(got["src1"], 10);
  EXPECT_EQ(got["src2"], 5);
  // sum over i of (100+i) for i in [0, n).
  EXPECT_EQ(sums["src2"], 100 * 5 + 0 + 1 + 2 + 3 + 4);
}

TEST(QpE2E, HierarchicalAggregationMatchesFlat) {
  SimPier net(16, PierOptions(31));
  std::vector<Tuple> rows;
  for (int i = 0; i < 48; ++i) {
    Tuple t("ev");
    t.Append("src", Value::String("s" + std::to_string(i % 4)));
    rows.push_back(std::move(t));
  }
  PublishEvents(&net, rows);
  net.RunFor(3 * kSecond);

  Sql sql =
      Sql("SELECT src, count(*) AS cnt FROM ev GROUP BY src TIMEOUT 14s")
          .WithAggStrategy("hier");
  auto plan = net.client(5)->Compile(sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 1u) << "hier strategy is single-graph";

  auto q = net.client(5)->Query(std::move(*plan));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::map<std::string, int64_t> got;
  q->OnTuple([&](const Tuple& t) {
    got[std::string(*t.Get("src")->AsString())] =
        t.Get("cnt")->int64_unchecked();
  });
  EXPECT_TRUE(q->Wait().ok());

  ASSERT_EQ(got.size(), 4u);
  for (int s = 0; s < 4; ++s)
    EXPECT_EQ(got["s" + std::to_string(s)], 12) << "group s" << s;
}

TEST(QpE2E, TopKOrdersGroupsGlobally) {
  SimPier net(10, PierOptions(41));
  std::vector<Tuple> rows;
  int counts[5] = {25, 16, 9, 4, 1};
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < counts[s]; ++i) {
      Tuple t("ev");
      t.Append("src", Value::String("src" + std::to_string(s)));
      rows.push_back(std::move(t));
    }
  }
  PublishEvents(&net, rows);
  net.RunFor(3 * kSecond);

  auto q = net.client(1)->Query(
      Sql("SELECT src, count(*) AS cnt FROM ev GROUP BY src "
          "ORDER BY cnt DESC LIMIT 3 TIMEOUT 16s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  std::vector<std::pair<std::string, int64_t>> got;
  q->OnTuple([&](const Tuple& t) {
    got.emplace_back(std::string(*t.Get("src")->AsString()),
                     t.Get("cnt")->int64_unchecked());
  });
  EXPECT_TRUE(q->Wait().ok());

  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<std::string, int64_t>{"src0", 25}));
  EXPECT_EQ(got[1], (std::pair<std::string, int64_t>{"src1", 16}));
  EXPECT_EQ(got[2], (std::pair<std::string, int64_t>{"src2", 9}));
}

TEST(QpE2E, RehashSymmetricHashJoin) {
  SimPier net(10, PierOptions(53));
  // r(a, x): 8 rows; s(b, y): join attr x = y matches for 0..3.
  ASSERT_TRUE(net.catalog()->Register(TableSpec("r").PartitionBy({"a"})).ok());
  // s partitioned on b, NOT the join attr: forces the rehash SHJ plan.
  ASSERT_TRUE(net.catalog()->Register(TableSpec("s").PartitionBy({"b"})).ok());
  for (int i = 0; i < 8; ++i) {
    Tuple t("r");
    t.Append("a", Value::Int64(i));
    t.Append("x", Value::Int64(i));
    ASSERT_TRUE(net.client(i % net.size())->Publish("r", t).ok());
  }
  for (int i = 0; i < 4; ++i) {
    Tuple t("s");
    t.Append("b", Value::Int64(100 + i));
    t.Append("y", Value::Int64(i));
    ASSERT_TRUE(net.client((i + 3) % net.size())->Publish("s", t).ok());
  }
  net.RunFor(3 * kSecond);

  auto plan = net.client(4)->Compile(
      Sql("SELECT * FROM r r1, s s1 WHERE r1.x = s1.y TIMEOUT 14s"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 3u) << "rehash plan: two puts + one join";

  auto q = net.client(4)->Query(std::move(*plan));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<std::pair<int64_t, int64_t>> matches;  // (a, b)
  q->OnTuple([&](const Tuple& t) {
    ASSERT_TRUE(t.Has("a"));
    ASSERT_TRUE(t.Has("b"));
    matches.emplace_back(t.Get("a")->int64_unchecked(),
                         t.Get("b")->int64_unchecked());
  });
  EXPECT_TRUE(q->Wait().ok());

  std::sort(matches.begin(), matches.end());
  ASSERT_EQ(matches.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(matches[i].first, i);
    EXPECT_EQ(matches[i].second, 100 + i);
  }
}

TEST(QpE2E, FetchMatchesJoinViaPrimaryIndex) {
  SimPier net(10, PierOptions(67));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("orders").PartitionBy({"oid"})).ok());
  // cust's primary index == the join attribute -> Fetch Matches join.
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("cust").PartitionBy({"cid"})).ok());
  for (int i = 0; i < 6; ++i) {
    Tuple t("orders");
    t.Append("oid", Value::Int64(i));
    t.Append("cust", Value::Int64(i % 3));
    ASSERT_TRUE(net.client(i % net.size())->Publish("orders", t).ok());
  }
  for (int i = 0; i < 3; ++i) {
    Tuple t("cust");
    t.Append("cid", Value::Int64(i));
    t.Append("name", Value::String("c" + std::to_string(i)));
    ASSERT_TRUE(net.client((i + 5) % net.size())->Publish("cust", t).ok());
  }
  net.RunFor(3 * kSecond);

  auto plan = net.client(2)->Compile(
      Sql("SELECT * FROM orders o, cust c WHERE o.cust = c.cid TIMEOUT 12s"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 1u) << "FM join plan is a single graph";
  bool has_fm = false;
  for (const OpSpec& op : plan->graphs[0].ops)
    has_fm |= op.kind == OpKind::kFetchMatches;
  EXPECT_TRUE(has_fm);

  auto q = net.client(2)->Query(std::move(*plan));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  EXPECT_EQ(rows.size(), 6u);
  for (const Tuple& t : rows) {
    EXPECT_TRUE(t.Has("name"));
    EXPECT_TRUE(t.Has("oid"));
  }
}

TEST(QpE2E, ContinuousQuerySeesLatePublishes) {
  SimPier net(8, PierOptions(71));
  net.RunFor(1 * kSecond);
  // Declared before anything is published: metadata, not data, is what the
  // catalog tracks, so a continuous query over an empty table is fine.
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());

  auto plan = net.client(0)->Compile(
      Sql("SELECT src, count(*) AS cnt FROM ev GROUP BY src "
          "TIMEOUT 20s WINDOW 3s CONTINUOUS"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->continuous);

  auto q = net.client(0)->Query(std::move(*plan));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<int64_t> observed;
  q->OnTuple([&](const Tuple& t) {
    if (*t.Get("src")->AsString() == "live")
      observed.push_back(t.Get("cnt")->int64_unchecked());
  });
  net.RunFor(2 * kSecond);

  // Publish while the query is live; each window should fold new arrivals.
  for (int i = 0; i < 6; ++i) {
    Tuple t("ev");
    t.Append("src", Value::String("live"));
    ASSERT_TRUE(net.client(i % net.size())->Publish("ev", t).ok());
    net.RunFor(1 * kSecond);
  }
  net.RunFor(10 * kSecond);

  ASSERT_FALSE(observed.empty());
  // Tumbling windows: the total of the per-window counts is the 6 events.
  int64_t total = 0;
  for (int64_t c : observed) total += c;
  EXPECT_EQ(total, 6);
}

// ---------------------------------------------------------------------------
// Absolute deadlines (the close-timeout hole from the relative-timeout era)
// ---------------------------------------------------------------------------

TEST(QpE2E, SubmitStampsAnAbsoluteDeadlineOntoDisseminatedPlans) {
  SimPier net(6, PierOptions(83));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  // Watch targeted dissemination arrive as stored objects and decode the
  // plan every executing node actually sees.
  TimeUs seen_deadline = -1;
  std::vector<uint64_t> subs;
  for (uint32_t i = 0; i < net.size(); ++i) {
    subs.push_back(net.dht(i)->OnNewData(
        "!dissem", [&](const ObjectName&, std::string_view blob) {
          auto p = QueryPlan::Decode(blob);
          if (p.ok()) seen_deadline = p->deadline_us;
        }));
  }
  TimeUs submitted_at = net.loop()->now();
  auto q = net.client(0)->Query(
      Sql("SELECT * FROM t WHERE k = 3 TIMEOUT 5s"));  // equality dissem
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  net.RunFor(3 * kSecond);
  EXPECT_EQ(seen_deadline, submitted_at + 5 * kSecond)
      << "SubmitQuery must stamp now + timeout as the absolute deadline";
  for (uint32_t i = 0; i < net.size(); ++i) net.dht(i)->CancelNewData(subs[i]);
}

TEST(QpE2E, LateGenerationFirstSightClosesAtTheDeadline) {
  // The PR-3 hole: a node whose FIRST sight of a continuous query is a
  // later generation used to arm a FULL timeout from swap time. With the
  // absolute deadline it arms only the remaining lifetime.
  SimPier net(2, PierOptions(87));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());

  QueryPlan plan;
  plan.query_id = 4242;
  plan.continuous = true;
  plan.timeout = 60 * kSecond;  // nominal lifetime: a minute...
  plan.window = 2 * kSecond;
  plan.generation = 3;  // ...but this node joins at generation 3,
  plan.deadline_us = net.loop()->now() + 4 * kSecond;  // 4s before the end
  OpGraph& g = plan.AddGraph();
  OpSpec& scan = g.AddOp(OpKind::kScan);
  scan.Set("ns", "ev");
  uint32_t scan_id = scan.id;
  OpSpec& res = g.AddOp(OpKind::kResult);
  g.Connect(scan_id, res.id, 0);

  QueryPlan meta = plan;
  meta.graphs.clear();
  QueryExecutor* exec = net.qp(1)->executor();
  ASSERT_TRUE(exec->StartGraphs(meta, plan.graphs).ok());
  ASSERT_TRUE(exec->HasQuery(4242));
  net.RunFor(2 * kSecond);
  EXPECT_TRUE(exec->HasQuery(4242)) << "still inside the remaining lifetime";
  net.RunFor(4 * kSecond);
  EXPECT_FALSE(exec->HasQuery(4242))
      << "the close timer must fire at the absolute deadline, not at "
         "swap time + full timeout";
}

// ---------------------------------------------------------------------------
// Continuous-query lifecycle: rewindow, swap, auto-replan
// ---------------------------------------------------------------------------

TEST(QpE2E, RewindowTakesEffectAtTheNextBoundary) {
  SimPier net(8, PierOptions(91));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());

  auto q = net.client(0)->Query(
      Sql("SELECT src, count(*) AS cnt FROM ev GROUP BY src "
          "TIMEOUT 60s WINDOW 6s CONTINUOUS"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<TimeUs> deliveries;
  q->OnTuple([&](const Tuple&) { deliveries.push_back(net.loop()->now()); });

  // Error paths first: a zero window and an unknown query are rejected.
  EXPECT_EQ(q->Rewindow(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(net.qp(0)->RewindowQuery(12345, kSecond).code(),
            StatusCode::kNotFound);

  auto publish_for = [&](TimeUs span) {
    for (TimeUs t = 0; t < span; t += kSecond) {
      Tuple e("ev");
      e.Append("src", Value::String("live"));
      ASSERT_TRUE(net.client(0)->Publish("ev", e).ok());
      net.RunFor(kSecond);
    }
  };

  TimeUs phase_a_end;
  publish_for(14 * kSecond);  // ~2 six-second windows
  phase_a_end = net.loop()->now();
  size_t phase_a = deliveries.size();

  ASSERT_TRUE(q->Rewindow(2 * kSecond).ok());
  publish_for(14 * kSecond);  // same span, ~7 two-second windows
  size_t phase_b = 0;
  for (TimeUs t : deliveries) phase_b += t > phase_a_end;

  EXPECT_GT(phase_a, 0u);
  EXPECT_GT(phase_b, phase_a + 1)
      << "shorter windows must flush more often over the same span (a="
      << phase_a << " b=" << phase_b << ")";

  // A snapshot query has no windows to adjust.
  auto snap = net.client(0)->Query(Sql("SELECT * FROM ev TIMEOUT 5s"));
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->Rewindow(kSecond).code(), StatusCode::kNotSupported);
}

TEST(QpE2E, SwapQueryReplacesTheRunningOpgraphs) {
  SimPier net(8, PierOptions(97));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());

  const char* query_text =
      "SELECT src, count(*) AS cnt FROM ev GROUP BY src "
      "TIMEOUT 60s WINDOW 3s CONTINUOUS";
  auto q = net.client(0)->Query(Sql(query_text).WithAggStrategy("flat"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  uint64_t qid = q->id();
  size_t delivered = 0;
  q->OnTuple([&](const Tuple&) { delivered++; });

  auto publish_for = [&](TimeUs span) {
    for (TimeUs t = 0; t < span; t += kSecond) {
      Tuple e("ev");
      e.Append("src", Value::String("live"));
      ASSERT_TRUE(net.client(0)->Publish("ev", e).ok());
      net.RunFor(kSecond);
    }
  };
  publish_for(8 * kSecond);
  size_t before_swap = delivered;
  EXPECT_GT(before_swap, 0u);

  // The flat plan's first graph holds a partial GroupBy; after the swap the
  // same (query, graph, op) coordinates must resolve to the hier plan's ops.
  auto hier = net.client(0)->Compile(
      Sql(query_text).WithAggStrategy("hier"));
  ASSERT_TRUE(hier.ok()) << hier.status().ToString();
  uint32_t hier_gid = hier->graphs[0].id;
  uint32_t hier_agg_op = 0;
  for (const OpSpec& op : hier->graphs[0].ops) {
    if (op.kind == OpKind::kHierAgg) hier_agg_op = op.id;
  }
  ASSERT_NE(hier_agg_op, 0u);

  // Guard rails: swaps need a live continuous query and a continuous plan.
  EXPECT_EQ(net.qp(0)->SwapQuery(424242, *hier).code(), StatusCode::kNotFound);
  {
    QueryPlan snapshot = *hier;
    snapshot.continuous = false;
    EXPECT_EQ(net.qp(0)->SwapQuery(qid, std::move(snapshot)).code(),
              StatusCode::kInvalidArgument);
  }

  ASSERT_TRUE(net.qp(0)->SwapQuery(qid, std::move(*hier)).ok());
  net.RunFor(2 * kSecond);  // dissemination of the new generation

  // Every node now runs the hier opgraph under the ORIGINAL query id.
  Operator* op = net.qp(1)->executor()->FindOp(qid, hier_gid, hier_agg_op);
  ASSERT_NE(op, nullptr) << "new generation instantiated on remote nodes";
  EXPECT_EQ(op->spec().kind, OpKind::kHierAgg);

  publish_for(12 * kSecond);
  EXPECT_GT(delivered, before_swap)
      << "the swapped plan keeps answering under the same handle";
  EXPECT_FALSE(q->done());
}

TEST(QpE2E, AutoReplanSwapsOnACardinalityShiftAndOnlyThen) {
  SimPier net(8, PierOptions(101));
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());
  net.client(0)->set_replan_period(2 * kSecond);
  Replanner::Options opts;
  opts.min_cost_ratio = 1.05;
  net.client(0)->set_replan_options(opts);

  // Submitted over an EMPTY table: no usable statistics, so the compiler
  // defaults to flat aggregation and the replanner's baseline is "flat".
  auto q = net.client(0)->Query(
      Sql("SELECT src, count(*) AS cnt FROM ev GROUP BY src "
          "TIMEOUT 60s WINDOW 3s CONTINUOUS")
          .WithReplan("auto"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  size_t delivered = 0;
  q->OnTuple([&](const Tuple&) { delivered++; });

  // Stable phase: a handful of tuples, far below min_sample_tuples — every
  // recompile re-picks the default, so the plan must never swap.
  for (int i = 0; i < 8; ++i) {
    Tuple e("ev");
    e.Append("src", Value::String("s" + std::to_string(i % 4)));
    ASSERT_TRUE(net.client(0)->Publish("ev", e).ok());
    net.RunFor(kSecond);
  }
  EXPECT_EQ(q->stats().replans, 0u) << "stable stats: no swap, ever";

  // Shift: the table grows dense (hundreds of tuples over 8 nodes), which
  // flips the cost model to hierarchical aggregation.
  for (int i = 0; i < 300; ++i) {
    Tuple e("ev");
    e.Append("src", Value::String("s" + std::to_string(i % 4)));
    ASSERT_TRUE(net.client(i % net.size())->Publish("ev", e).ok());
    if (i % 25 == 24) net.RunFor(kSecond);
  }
  net.RunFor(10 * kSecond);  // several replan ticks past the shift

  EXPECT_GE(q->stats().replans, 1u)
      << "the cardinality shift must trigger a replan";
  EXPECT_LE(q->stats().replans, 1u)
      << "after the swap the fresh choice is stable again";
  // Tumbling windows only emit when fresh tuples arrive, so keep the stream
  // alive to observe the swapped plan answering.
  size_t at_swap = delivered;
  for (int i = 0; i < 10; ++i) {
    Tuple e("ev");
    e.Append("src", Value::String("s0"));
    ASSERT_TRUE(net.client(0)->Publish("ev", e).ok());
    net.RunFor(kSecond);
  }
  net.RunFor(4 * kSecond);
  EXPECT_GT(delivered, at_swap) << "the replanned query keeps answering";
}

TEST(QpE2E, CancelStopsDelivery) {
  SimPier net(8, PierOptions(83));
  PublishRows(&net, 16);
  net.RunFor(3 * kSecond);

  auto q = net.client(1)->Query(Sql("SELECT k FROM t TIMEOUT 10s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  bool done = false;
  q->OnDone([&]() { done = true; });
  EXPECT_TRUE(q->Cancel().ok());
  EXPECT_TRUE(done) << "Cancel completes the handle through OnDone";
  EXPECT_TRUE(q->done());
  EXPECT_TRUE(q->stats().cancelled);
  net.RunFor(14 * kSecond);
  EXPECT_EQ(q->stats().tuples, 0u)
      << "no answers may be delivered after Cancel";
}

}  // namespace
}  // namespace pier
