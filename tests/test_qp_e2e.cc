// End-to-end query processing over a simulated PIER network: publish base
// tuples, submit SQL, receive answers at the proxy.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "qp/sim_pier.h"
#include "qp/sql.h"

namespace pier {
namespace {

SimPier::Options PierOptions(uint64_t seed = 7) {
  SimPier::Options opts;
  opts.sim.seed = seed;
  opts.seed_routing = true;
  opts.settle_time = 8 * kSecond;
  return opts;
}

/// Publish `n` rows of a simple table t(k, v, s) spread across the nodes:
/// k = row index, v = k * 10, s = "row<k>".
void PublishRows(SimPier* net, int n, const std::string& table = "t") {
  for (int i = 0; i < n; ++i) {
    Tuple t(table);
    t.Append("k", Value::Int64(i));
    t.Append("v", Value::Int64(i * 10));
    t.Append("s", Value::String("row" + std::to_string(i)));
    net->qp(i % net->size())->Publish(table, {"k"}, t);
  }
}

TEST(QpE2E, SelectWhereStreamsMatchingRows) {
  SimPier net(10, PierOptions());
  PublishRows(&net, 20);
  net.RunFor(3 * kSecond);

  SqlOptions sql;
  sql.tables["t"].partition_attrs = {"k"};
  auto plan = CompileSql("SELECT k, v FROM t WHERE v >= 150 TIMEOUT 10s", sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::vector<int64_t> ks;
  bool done = false;
  auto qid = net.qp(3)->SubmitQuery(*plan, [&](const Tuple& t) {
    ASSERT_TRUE(t.Has("k"));
    ASSERT_TRUE(t.Has("v"));
    EXPECT_FALSE(t.Has("s")) << "projection should drop s";
    ks.push_back(t.Get("k")->int64_unchecked());
  }, [&]() { done = true; });
  ASSERT_TRUE(qid.ok());

  net.RunFor(15 * kSecond);
  EXPECT_TRUE(done);
  std::sort(ks.begin(), ks.end());
  // v >= 150 -> k in {15..19}.
  EXPECT_EQ(ks, (std::vector<int64_t>{15, 16, 17, 18, 19}));
}

TEST(QpE2E, EqualityPredicateUsesTargetedDissemination) {
  SimPier net(12, PierOptions(11));
  PublishRows(&net, 24);
  net.RunFor(3 * kSecond);

  SqlOptions sql;
  sql.tables["t"].partition_attrs = {"k"};
  auto plan = CompileSql("SELECT * FROM t WHERE k = 7 TIMEOUT 8s", sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 1u);
  EXPECT_EQ(plan->graphs[0].dissem, DissemKind::kEquality);

  int rows = 0;
  auto qid = net.qp(0)->SubmitQuery(*plan, [&](const Tuple& t) {
    EXPECT_EQ(t.Get("k")->int64_unchecked(), 7);
    EXPECT_EQ(t.Get("v")->int64_unchecked(), 70);
    rows++;
  });
  ASSERT_TRUE(qid.ok());
  net.RunFor(12 * kSecond);
  EXPECT_EQ(rows, 1);
}

TEST(QpE2E, FlatAggregationCountsPerGroup) {
  SimPier net(10, PierOptions(23));
  // 30 events across 3 sources with known counts: src0 x 15, src1 x 10, src2 x 5.
  int counts[3] = {15, 10, 5};
  int row = 0;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < counts[s]; ++i, ++row) {
      Tuple t("ev");
      t.Append("src", Value::String("src" + std::to_string(s)));
      t.Append("bytes", Value::Int64(100 + i));
      net.qp(row % net.size())->Publish("ev", {"src"}, t);
    }
  }
  net.RunFor(3 * kSecond);

  SqlOptions sql;
  auto plan = CompileSql(
      "SELECT src, count(*) AS cnt, sum(bytes) AS total FROM ev "
      "GROUP BY src TIMEOUT 12s", sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::map<std::string, int64_t> got;
  std::map<std::string, int64_t> sums;
  net.qp(2)->SubmitQuery(*plan, [&](const Tuple& t) {
    ASSERT_TRUE(t.Has("src"));
    got[std::string(*t.Get("src")->AsString())] =
        t.Get("cnt")->int64_unchecked();
    sums[std::string(*t.Get("src")->AsString())] =
        t.Get("total")->int64_unchecked();
  });
  net.RunFor(16 * kSecond);

  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got["src0"], 15);
  EXPECT_EQ(got["src1"], 10);
  EXPECT_EQ(got["src2"], 5);
  // sum over i of (100+i) for i in [0, n).
  EXPECT_EQ(sums["src2"], 100 * 5 + 0 + 1 + 2 + 3 + 4);
}

TEST(QpE2E, HierarchicalAggregationMatchesFlat) {
  SimPier net(16, PierOptions(31));
  for (int i = 0; i < 48; ++i) {
    Tuple t("ev");
    t.Append("src", Value::String("s" + std::to_string(i % 4)));
    net.qp(i % net.size())->Publish("ev", {"src"}, t);
  }
  net.RunFor(3 * kSecond);

  SqlOptions sql;
  sql.agg_strategy = "hier";
  auto plan =
      CompileSql("SELECT src, count(*) AS cnt FROM ev GROUP BY src TIMEOUT 14s",
                 sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 1u) << "hier strategy is single-graph";

  std::map<std::string, int64_t> got;
  net.qp(5)->SubmitQuery(*plan, [&](const Tuple& t) {
    got[std::string(*t.Get("src")->AsString())] =
        t.Get("cnt")->int64_unchecked();
  });
  net.RunFor(18 * kSecond);

  ASSERT_EQ(got.size(), 4u);
  for (int s = 0; s < 4; ++s)
    EXPECT_EQ(got["s" + std::to_string(s)], 12) << "group s" << s;
}

TEST(QpE2E, TopKOrdersGroupsGlobally) {
  SimPier net(10, PierOptions(41));
  int counts[5] = {25, 16, 9, 4, 1};
  int row = 0;
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < counts[s]; ++i, ++row) {
      Tuple t("ev");
      t.Append("src", Value::String("src" + std::to_string(s)));
      net.qp(row % net.size())->Publish("ev", {"src"}, t);
    }
  }
  net.RunFor(3 * kSecond);

  SqlOptions sql;
  auto plan = CompileSql(
      "SELECT src, count(*) AS cnt FROM ev GROUP BY src "
      "ORDER BY cnt DESC LIMIT 3 TIMEOUT 16s", sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::vector<std::pair<std::string, int64_t>> got;
  net.qp(1)->SubmitQuery(*plan, [&](const Tuple& t) {
    got.emplace_back(std::string(*t.Get("src")->AsString()),
                     t.Get("cnt")->int64_unchecked());
  });
  net.RunFor(20 * kSecond);

  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<std::string, int64_t>{"src0", 25}));
  EXPECT_EQ(got[1], (std::pair<std::string, int64_t>{"src1", 16}));
  EXPECT_EQ(got[2], (std::pair<std::string, int64_t>{"src2", 9}));
}

TEST(QpE2E, RehashSymmetricHashJoin) {
  SimPier net(10, PierOptions(53));
  // r(a, x): 8 rows; s(b, y): join attr x = y matches for 0..3.
  for (int i = 0; i < 8; ++i) {
    Tuple t("r");
    t.Append("a", Value::Int64(i));
    t.Append("x", Value::Int64(i));
    net.qp(i % net.size())->Publish("r", {"a"}, t);
  }
  for (int i = 0; i < 4; ++i) {
    Tuple t("s");
    t.Append("b", Value::Int64(100 + i));
    t.Append("y", Value::Int64(i));
    net.qp((i + 3) % net.size())->Publish("s", {"b"}, t);
  }
  net.RunFor(3 * kSecond);

  SqlOptions sql;
  sql.tables["r"].partition_attrs = {"a"};
  sql.tables["s"].partition_attrs = {"b"};  // not the join attr: rehash SHJ
  auto plan = CompileSql(
      "SELECT * FROM r r1, s s1 WHERE r1.x = s1.y TIMEOUT 14s", sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 3u) << "rehash plan: two puts + one join";

  std::vector<std::pair<int64_t, int64_t>> matches;  // (a, b)
  net.qp(4)->SubmitQuery(*plan, [&](const Tuple& t) {
    ASSERT_TRUE(t.Has("a"));
    ASSERT_TRUE(t.Has("b"));
    matches.emplace_back(t.Get("a")->int64_unchecked(),
                         t.Get("b")->int64_unchecked());
  });
  net.RunFor(18 * kSecond);

  std::sort(matches.begin(), matches.end());
  ASSERT_EQ(matches.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(matches[i].first, i);
    EXPECT_EQ(matches[i].second, 100 + i);
  }
}

TEST(QpE2E, FetchMatchesJoinViaPrimaryIndex) {
  SimPier net(10, PierOptions(67));
  for (int i = 0; i < 6; ++i) {
    Tuple t("orders");
    t.Append("oid", Value::Int64(i));
    t.Append("cust", Value::Int64(i % 3));
    net.qp(i % net.size())->Publish("orders", {"oid"}, t);
  }
  for (int i = 0; i < 3; ++i) {
    Tuple t("cust");
    t.Append("cid", Value::Int64(i));
    t.Append("name", Value::String("c" + std::to_string(i)));
    net.qp((i + 5) % net.size())->Publish("cust", {"cid"}, t);
  }
  net.RunFor(3 * kSecond);

  SqlOptions sql;
  sql.tables["orders"].partition_attrs = {"oid"};
  sql.tables["cust"].partition_attrs = {"cid"};  // == join attr -> FM join
  auto plan = CompileSql(
      "SELECT * FROM orders o, cust c WHERE o.cust = c.cid TIMEOUT 12s", sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphs.size(), 1u) << "FM join plan is a single graph";
  bool has_fm = false;
  for (const OpSpec& op : plan->graphs[0].ops)
    has_fm |= op.kind == OpKind::kFetchMatches;
  EXPECT_TRUE(has_fm);

  int rows = 0;
  net.qp(2)->SubmitQuery(*plan, [&](const Tuple& t) {
    ASSERT_TRUE(t.Has("name"));
    ASSERT_TRUE(t.Has("oid"));
    rows++;
  });
  net.RunFor(16 * kSecond);
  EXPECT_EQ(rows, 6);
}

TEST(QpE2E, ContinuousQuerySeesLatePublishes) {
  SimPier net(8, PierOptions(71));
  net.RunFor(1 * kSecond);

  SqlOptions sql;
  auto plan = CompileSql(
      "SELECT src, count(*) AS cnt FROM ev GROUP BY src "
      "TIMEOUT 20s WINDOW 3s CONTINUOUS", sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->continuous);

  std::vector<int64_t> observed;
  net.qp(0)->SubmitQuery(*plan, [&](const Tuple& t) {
    if (*t.Get("src")->AsString() == "live")
      observed.push_back(t.Get("cnt")->int64_unchecked());
  });
  net.RunFor(2 * kSecond);

  // Publish while the query is live; each window should fold new arrivals.
  for (int i = 0; i < 6; ++i) {
    Tuple t("ev");
    t.Append("src", Value::String("live"));
    net.qp(i % net.size())->Publish("ev", {"src"}, t);
    net.RunFor(1 * kSecond);
  }
  net.RunFor(10 * kSecond);

  ASSERT_FALSE(observed.empty());
  // Tumbling windows: the total of the per-window counts is the 6 events.
  int64_t total = 0;
  for (int64_t c : observed) total += c;
  EXPECT_EQ(total, 6);
}

}  // namespace
}  // namespace pier
