// k-way successor-set replication: writer-driven placement, the k = 1
// byte-identical fast path, promotion after owner death, read-any gets with
// read repair, scan-time replica merge (exactly-once), origin-stamped replica
// expiry, join-time range pulls, and the replicas plumbing through UFL,
// TableSpec and query plans.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "overlay/sim_overlay.h"
#include "qp/sim_pier.h"
#include "qp/ufl.h"

namespace pier {
namespace {

SimOverlay::Options SeededOptions(uint64_t seed = 42, int replication = 1) {
  SimOverlay::Options opts;
  opts.sim.seed = seed;
  opts.dht.replication_factor = replication;
  opts.seed_routing = true;
  opts.settle_time = 1 * kSecond;
  return opts;
}

int OwnerOf(SimOverlay* net, const std::string& ns, const std::string& key) {
  Id target = RoutingId(ns, key);
  for (uint32_t i = 0; i < net->size(); ++i) {
    if (!net->harness()->IsAlive(i)) continue;
    if (net->dht(i)->router()->protocol()->IsOwner(target))
      return static_cast<int>(i);
  }
  return -1;
}

/// Node index behind an address (SimHarness maps index <-> host - 1).
uint32_t NodeOf(const NetAddress& a) { return a.host - 1; }

/// Count the (ns, key) copies each node holds, by replica tag.
struct CopyCensus {
  size_t primaries = 0;
  size_t replicas = 0;
};
CopyCensus Census(SimOverlay* net, const std::string& ns,
                  const std::string& key) {
  CopyCensus c;
  for (uint32_t i = 0; i < net->size(); ++i) {
    if (!net->harness()->IsAlive(i)) continue;
    for (const auto* obj : net->dht(i)->objects()->Get(ns, key)) {
      if (obj->is_replica())
        c.replicas++;
      else
        c.primaries++;
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

TEST(Replication, PutPlacesKTaggedCopiesAtOwnerAndSuccessors) {
  SimOverlay net(8, SeededOptions(11));
  net.dht(3)->Put("rt", "k1", "s", "v", 60 * kSecond, nullptr, /*replicas=*/3);
  net.RunFor(2 * kSecond);

  int owner = OwnerOf(&net, "rt", "k1");
  ASSERT_GE(owner, 0);
  auto at_owner = net.dht(owner)->objects()->Get("rt", "k1");
  ASSERT_EQ(at_owner.size(), 1u);
  EXPECT_EQ(at_owner[0]->replica_index, 0);
  EXPECT_EQ(at_owner[0]->desired_replicas, 3);
  EXPECT_EQ(at_owner[0]->owner_id, net.dht(owner)->local_id());

  // The owner's first two successors hold replica copies tagged 1 and 2.
  auto succs =
      net.dht(owner)->router()->protocol()->SuccessorSet(2);
  ASSERT_EQ(succs.size(), 2u);
  for (size_t j = 0; j < succs.size(); ++j) {
    auto at_succ = net.dht(NodeOf(succs[j]))->objects()->Get("rt", "k1");
    ASSERT_EQ(at_succ.size(), 1u) << "successor " << j << " missing its copy";
    EXPECT_EQ(at_succ[j == 0 ? 0 : 0]->replica_index, j + 1);
    EXPECT_TRUE(at_succ[0]->is_replica());
    EXPECT_EQ(at_succ[0]->desired_replicas, 3);
    EXPECT_EQ(at_succ[0]->owner_id, net.dht(owner)->local_id());
  }

  EXPECT_EQ(net.dht(3)->stats().replica_puts, 2u);
  CopyCensus c = Census(&net, "rt", "k1");
  EXPECT_EQ(c.primaries, 1u);
  EXPECT_EQ(c.replicas, 2u);
}

TEST(Replication, BatchPutReplicatesPerDestinationGroup) {
  SimOverlay net(8, SeededOptions(12));
  std::vector<DhtPutItem> items;
  for (int i = 0; i < 10; ++i) {
    DhtPutItem item;
    item.ns = "bt";
    item.key = "k" + std::to_string(i);
    item.suffix = "s";
    item.value = "v";
    item.lifetime = 60 * kSecond;
    item.replicas = 3;
    items.push_back(std::move(item));
  }
  Status done = Status::Internal("not called");
  std::vector<Dht::PutGroupStatus> groups;
  net.dht(1)->PutBatch(std::move(items),
                       [&](const Status& s, std::vector<Dht::PutGroupStatus> g) {
                         done = s;
                         groups = std::move(g);
                       });
  net.RunFor(3 * kSecond);
  ASSERT_TRUE(done.ok()) << done.ToString();
  size_t replica_frames = 0;
  for (const auto& g : groups) {
    EXPECT_FALSE(g.degraded());
    replica_frames += g.replica_frames;
  }
  EXPECT_GT(replica_frames, 0u) << "no replica frames rode the batch";

  for (int i = 0; i < 10; ++i) {
    CopyCensus c = Census(&net, "bt", "k" + std::to_string(i));
    EXPECT_EQ(c.primaries, 1u) << "key k" << i;
    EXPECT_EQ(c.replicas, 2u) << "key k" << i;
  }
  EXPECT_EQ(net.dht(1)->stats().replica_puts, 20u);
}

TEST(Replication, FactorOneKeepsEveryReplicationCounterAtZero) {
  // The k = 1 deployment must not even notice the subsystem exists: no
  // replica frames, no repair traffic, no scan suppression — on top of the
  // byte-identical wire guard in test_dht.
  SimOverlay net(8, SeededOptions(13));
  for (int i = 0; i < 8; ++i)
    net.dht(i % 8)->Put("z", "k" + std::to_string(i), "s", "v", 30 * kSecond);
  net.RunFor(10 * kSecond);  // many repair ticks
  std::vector<DhtItem> got;
  net.dht(2)->Get("z", "k1", [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok());
    got = std::move(items);
  });
  net.RunFor(2 * kSecond);
  EXPECT_EQ(got.size(), 1u);
  for (uint32_t i = 0; i < net.size(); ++i) {
    Dht::Stats s = net.dht(i)->stats();
    EXPECT_EQ(s.replica_puts, 0u) << "node " << i;
    EXPECT_EQ(s.replica_stores, 0u) << "node " << i;
    EXPECT_EQ(s.promotions, 0u) << "node " << i;
    EXPECT_EQ(s.handoff_pushes, 0u) << "node " << i;
    EXPECT_EQ(s.handoff_pulls, 0u) << "node " << i;
    EXPECT_EQ(s.read_failovers, 0u) << "node " << i;
    EXPECT_EQ(s.read_repairs, 0u) << "node " << i;
    EXPECT_EQ(s.suppressed_scan_rows, 0u) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Handoff
// ---------------------------------------------------------------------------

TEST(Replication, OwnerDeathPromotesAReplicaAndGetStillAnswers) {
  SimOverlay net(10, SeededOptions(17, /*replication=*/3));
  net.dht(4)->Put("hd", "k", "s", "payload", 120 * kSecond);
  net.RunFor(2 * kSecond);
  int owner = OwnerOf(&net, "hd", "k");
  ASSERT_GE(owner, 0);
  ASSERT_EQ(Census(&net, "hd", "k").replicas, 2u);

  net.harness()->FailNode(static_cast<uint32_t>(owner));
  net.RunFor(8 * kSecond);  // stabilize + repair ticks

  // Some replica holder owns the id now and promoted its copy.
  uint64_t promotions = 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (!net.harness()->IsAlive(i)) continue;
    promotions += net.dht(i)->stats().promotions;
  }
  EXPECT_GE(promotions, 1u) << "no replica was promoted after the owner died";
  int new_owner = OwnerOf(&net, "hd", "k");
  ASSERT_GE(new_owner, 0);
  ASSERT_NE(new_owner, owner);
  auto at_new = net.dht(new_owner)->objects()->Get("hd", "k");
  ASSERT_EQ(at_new.size(), 1u);
  EXPECT_FALSE(at_new[0]->is_replica());

  // A read-any get from an uninvolved node still answers.
  uint32_t reader = 0;
  while (!net.harness()->IsAlive(reader) ||
         static_cast<int>(reader) == new_owner)
    reader++;
  std::vector<DhtItem> got;
  net.dht(reader)->Get("hd", "k", [&](const Status& s, std::vector<DhtItem> items) {
    ASSERT_TRUE(s.ok());
    got = std::move(items);
  });
  net.RunFor(3 * kSecond);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].value, "payload");
}

TEST(Replication, JoiningNodePullsTheReplicatedRangeItNowOwns) {
  SimOverlay net(8, SeededOptions(19, /*replication=*/3));
  for (int i = 0; i < 64; ++i)
    net.dht(i % 8)->Put("jp", "k" + std::to_string(i), "s", "v", 300 * kSecond);
  net.RunFor(3 * kSecond);

  uint32_t joiner = net.AddNode();
  net.RunFor(kSecond);
  net.SeedAll();  // the ring integrates the joiner: it owns a range now
  net.RunFor(5 * kSecond);

  EXPECT_GT(net.dht(joiner)->stats().handoff_pulls, 0u)
      << "the new node never pulled the replicated objects of its range";
  // Whatever it pulled it owns as primaries; nothing is double-counted.
  size_t total = 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    if (!net.harness()->IsAlive(i)) continue;
    net.dht(i)->LocalScan("jp", [&](const ObjectName&, std::string_view) {
      total++;
    });
  }
  EXPECT_EQ(total, 64u) << "scan-visible copies drifted after the handoff";
}

// ---------------------------------------------------------------------------
// Read repair
// ---------------------------------------------------------------------------

TEST(Replication, ReplicaAnswersWhenOwnerCopyIsGoneAndRepairsIt) {
  SimOverlay net(8, SeededOptions(23));
  net.dht(2)->Put("rr", "k", "s", "v", 120 * kSecond, nullptr, /*replicas=*/3);
  net.RunFor(2 * kSecond);
  int owner = OwnerOf(&net, "rr", "k");
  ASSERT_GE(owner, 0);

  // Simulate a stale owner: its primary copy vanishes (as if the node
  // restarted); the replica copies remain.
  net.dht(owner)->objects()->Remove(ObjectName{"rr", "k", "s"});
  ASSERT_TRUE(net.dht(owner)->objects()->Get("rr", "k").empty());

  uint32_t reader = owner == 0 ? 1 : 0;
  std::vector<DhtItem> got;
  net.dht(reader)->Get(
      "rr", "k",
      [&](const Status& s, std::vector<DhtItem> items) {
        ASSERT_TRUE(s.ok());
        got = std::move(items);
      },
      /*replicas=*/3);
  net.RunFor(3 * kSecond);

  ASSERT_EQ(got.size(), 1u) << "read-any lost the object";
  EXPECT_EQ(got[0].value, "v");
  EXPECT_EQ(net.dht(reader)->stats().read_failovers, 1u);
  EXPECT_EQ(net.dht(reader)->stats().read_repairs, 1u);
  // The owner copy is back — and primary again.
  auto repaired = net.dht(owner)->objects()->Get("rr", "k");
  ASSERT_EQ(repaired.size(), 1u) << "read repair never restored the owner";
  EXPECT_FALSE(repaired[0]->is_replica());
}

// ---------------------------------------------------------------------------
// Scan-time replica merge
// ---------------------------------------------------------------------------

TEST(Replication, LocalScansSeeEachReplicatedObjectExactlyOnce) {
  SimOverlay net(8, SeededOptions(29, /*replication=*/3));
  for (int i = 0; i < 30; ++i)
    net.dht(i % 8)->Put("sc", "k" + std::to_string(i), "s", "v", 120 * kSecond);
  net.RunFor(3 * kSecond);

  size_t visible = 0;
  uint64_t suppressed = 0, stored = 0;
  for (uint32_t i = 0; i < net.size(); ++i) {
    net.dht(i)->LocalScan("sc", [&](const ObjectName&, std::string_view) {
      visible++;
    });
    suppressed += net.dht(i)->stats().suppressed_scan_rows;
    stored += net.dht(i)->objects()->NamespaceObjects("sc");
  }
  EXPECT_EQ(visible, 30u) << "replica copies leaked into (or hid from) scans";
  EXPECT_EQ(stored, 90u) << "not every copy was placed";
  EXPECT_EQ(suppressed, 60u);
}

// ---------------------------------------------------------------------------
// Origin-stamped expiry
// ---------------------------------------------------------------------------

TEST(Replication, ReplicaCopiesExpireOnTheOriginClock) {
  SimOverlay net(4, SeededOptions(31));
  ObjectManager* om = net.dht(0)->objects();
  Vri* vri = net.dht(0)->vri();
  TimeUs now = vri->Now();
  // An object whose origin stored it 50s ago with 3s of life left: the
  // replica store keeps the origin's remaining lifetime and backdates
  // stored_at, instead of granting a fresh local lifetime.
  om->PutReplica(ObjectName{"ex", "k", "s"}, "v", /*remaining=*/3 * kSecond,
                 /*age=*/50 * kSecond, /*replica_index=*/1,
                 /*desired_replicas=*/3, /*owner_id=*/7);
  auto items = om->Get("ex", "k");
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0]->stored_at, now - 50 * kSecond);
  EXPECT_EQ(items[0]->expires_at, now + 3 * kSecond);

  net.RunFor(4 * kSecond);
  EXPECT_TRUE(om->Get("ex", "k").empty())
      << "the replica outlived its origin lifetime";

  // An already-expired origin copy is never stored.
  om->PutReplica(ObjectName{"ex", "k2", "s"}, "v", /*remaining=*/0,
                 /*age=*/10 * kSecond, 1, 3, 7);
  EXPECT_TRUE(om->Get("ex", "k2").empty());
}

// ---------------------------------------------------------------------------
// Aggregate safety: replication must not change answers
// ---------------------------------------------------------------------------

int64_t RunCountingSnapshot(int replication, uint64_t seed) {
  SimPier::Options opts;
  opts.sim.seed = seed;
  opts.dht.replication_factor = replication;
  opts.seed_routing = true;
  opts.settle_time = 8 * kSecond;
  SimPier net(8, opts);
  EXPECT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"id"})).ok());
  for (int i = 0; i < 40; ++i) {
    Tuple e("ev");
    e.Append("id", Value::Int64(i));
    e.Append("src", Value::String("live"));
    EXPECT_TRUE(net.client(i % 8)->Publish("ev", e).ok());
  }
  net.RunFor(2 * kSecond);

  auto q = net.client(1)->Query(
      Sql("SELECT src, count(*) AS cnt FROM ev GROUP BY src TIMEOUT 8s")
          .WithAggStrategy("flat"));
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  if (!q.ok()) return -1;
  int64_t cnt = -1;
  q->OnTuple([&](const Tuple& t) { cnt = t.Get("cnt")->int64_unchecked(); });
  net.RunFor(12 * kSecond);
  return cnt;
}

TEST(Replication, ChurnFreeAggregatesMatchBetweenK3AndK1) {
  int64_t k1 = RunCountingSnapshot(1, 101);
  int64_t k3 = RunCountingSnapshot(3, 101);
  EXPECT_EQ(k1, 40) << "k = 1 baseline miscounted";
  EXPECT_EQ(k3, k1) << "replication changed a churn-free aggregate";
}

// ---------------------------------------------------------------------------
// Plumbing: UFL, TableSpec, plan validation
// ---------------------------------------------------------------------------

TEST(Replication, UflReplicasOptionFlowsIntoThePlan) {
  auto plan = ParseUfl(R"(
    query { timeout = 5s; replicas = 3; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->replicas, 3);

  EXPECT_FALSE(ParseUfl(R"(
    query { timeout = 5s; replicas = -1; }
    graph g broadcast { s: scan [ns=events]; o: result; s -> o; }
  )")
                   .ok());
}

TEST(Replication, SubmitRejectsAFactorTheOverlayCannotPlace) {
  SimPier::Options opts;
  opts.sim.seed = 37;
  opts.seed_routing = true;
  SimPier net(4, opts);
  auto plan = ParseUfl(R"(
    query { timeout = 5s; replicas = 99; }
    graph g broadcast { s: scan [ns=ev2]; o: result; s -> o; }
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto qid = net.qp(0)->SubmitQuery(*plan, nullptr);
  ASSERT_FALSE(qid.ok());
  EXPECT_EQ(qid.status().code(), StatusCode::kInvalidArgument)
      << qid.status().ToString();
}

TEST(Replication, TableSpecReplicasPlaceCopiesAndOversizedSpecIsRejected) {
  SimPier::Options opts;
  opts.sim.seed = 41;
  opts.seed_routing = true;
  SimPier net(8, opts);
  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("rv").PartitionBy({"id"}).Replicas(3))
                  .ok());
  for (int i = 0; i < 10; ++i) {
    Tuple e("rv");
    e.Append("id", Value::Int64(i));
    ASSERT_TRUE(net.client(2)->Publish("rv", e).ok());
  }
  net.RunFor(3 * kSecond);
  uint64_t replica_stores = 0;
  for (uint32_t i = 0; i < net.size(); ++i)
    replica_stores += net.dht(i)->stats().replica_stores;
  EXPECT_EQ(replica_stores, 20u)
      << "the TableSpec factor never reached the DHT";

  ASSERT_TRUE(net.catalog()
                  ->Register(TableSpec("rx").PartitionBy({"id"}).Replicas(100))
                  .ok());
  Tuple e("rx");
  e.Append("id", Value::Int64(1));
  Status s = net.client(2)->Publish("rx", e);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

}  // namespace
}  // namespace pier
