// Tests for the statistics subsystem and the cost-based optimizer: KMV
// sketch accuracy, publish-time accrual, the sys.stats round trip through a
// PIER query, strategy flips as cardinality ratios cross the cost-model
// crossovers, and the no-stats guarantee that compiled plans stay
// byte-identical to the pre-optimizer compiler.

#include <gtest/gtest.h>

#include <set>

#include "opt/cost_model.h"
#include "opt/optimizer.h"
#include "opt/stats.h"
#include "qp/sim_pier.h"
#include "qp/sql.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// KMV sketch
// ---------------------------------------------------------------------------

TEST(KmvSketch, ExactBelowK) {
  KmvSketch s(64);
  for (int i = 0; i < 40; ++i) s.Add("key" + std::to_string(i));
  for (int i = 0; i < 40; ++i) s.Add("key" + std::to_string(i));  // dups
  EXPECT_DOUBLE_EQ(s.Estimate(), 40.0);
}

TEST(KmvSketch, ApproximatesLargeCardinalities) {
  KmvSketch s(64);
  const double kTrue = 5000;
  for (int i = 0; i < static_cast<int>(kTrue); ++i)
    s.Add("value-" + std::to_string(i));
  double est = s.Estimate();
  EXPECT_GT(est, kTrue * 0.6) << est;
  EXPECT_LT(est, kTrue * 1.6) << est;
}

TEST(KmvSketch, MergeApproximatesUnion) {
  KmvSketch a(64), b(64);
  for (int i = 0; i < 1000; ++i) a.Add("x" + std::to_string(i));
  for (int i = 500; i < 1500; ++i) b.Add("x" + std::to_string(i));
  a.Merge(b);
  double est = a.Estimate();
  EXPECT_GT(est, 1500 * 0.6) << est;
  EXPECT_LT(est, 1500 * 1.6) << est;
}

TEST(KmvSketch, SerializeRoundTrip) {
  KmvSketch s(32);
  for (int i = 0; i < 200; ++i) s.Add("k" + std::to_string(i));
  Result<KmvSketch> back = KmvSketch::Deserialize(s.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_DOUBLE_EQ(back->Estimate(), s.Estimate());
  EXPECT_FALSE(KmvSketch::Deserialize("junk").ok());
  EXPECT_FALSE(KmvSketch::Deserialize("").ok());
}

TEST(Stats, QueryScopedNamespacesAreRecognized) {
  EXPECT_TRUE(IsQueryScopedNamespace("q123.join"));
  EXPECT_TRUE(IsQueryScopedNamespace("q7.agg"));
  EXPECT_TRUE(IsQueryScopedNamespace("!dissem"));
  EXPECT_FALSE(IsQueryScopedNamespace("quotes"));  // 'q' but no digits+dot
  EXPECT_FALSE(IsQueryScopedNamespace("events"));
  EXPECT_FALSE(IsQueryScopedNamespace("sys.stats"));
}

// ---------------------------------------------------------------------------
// StatsRegistry accrual + sys.stats round trip
// ---------------------------------------------------------------------------

/// Seed a registry directly (no network): n tuples whose partition key
/// cycles through `distinct` values, carrying `payload` extra bytes.
void Seed(StatsRegistry* reg, const std::string& table, int n, int distinct,
          int payload = 8) {
  for (int i = 0; i < n; ++i) {
    Tuple t(table);
    t.Append("k", Value::Int64(i % distinct));
    t.Append("pad", Value::Bytes(std::string(payload, 'x')));
    reg->Observe(table, t, {"k"}, t.Encode().size(), (1 + i) * kSecond);
  }
}

TEST(Stats, ArrivalRateDecaysForIdleTables) {
  StatsRegistry reg;
  // 101 tuples over 100s (Seed stamps 1s..101s): ~1 tuple/sec.
  Seed(&reg, "t", 101, 10);
  const TimeUs last = 101 * kSecond;

  double raw = reg.Snapshot("t").rate_per_sec;
  EXPECT_NEAR(raw, 1.0, 0.05);

  // Reading "as of" an instant at or before the last observation applies no
  // decay; neither does the now-less Snapshot.
  EXPECT_DOUBLE_EQ(reg.SnapshotAt("t", 0).rate_per_sec, raw);
  EXPECT_DOUBLE_EQ(reg.SnapshotAt("t", last).rate_per_sec, raw);
  EXPECT_DOUBLE_EQ(reg.SnapshotAt("t", last - kSecond).rate_per_sec, raw);

  // One half-life of silence halves the rate; a long dry spell drives it
  // toward zero instead of advertising the historical average forever.
  double one_hl =
      reg.SnapshotAt("t", last + StatsRegistry::kRateHalfLife).rate_per_sec;
  EXPECT_NEAR(one_hl, raw / 2, 0.02);
  double five_hl =
      reg.SnapshotAt("t", last + 5 * StatsRegistry::kRateHalfLife)
          .rate_per_sec;
  EXPECT_LT(five_hl, raw / 25);
  EXPECT_GT(five_hl, 0.0);

  // Everything except the rate is time-invariant.
  TableStats decayed = reg.SnapshotAt("t", last + StatsRegistry::kRateHalfLife);
  TableStats fresh = reg.Snapshot("t");
  EXPECT_EQ(decayed.tuples, fresh.tuples);
  EXPECT_DOUBLE_EQ(decayed.distinct, fresh.distinct);
  EXPECT_DOUBLE_EQ(decayed.mean_bytes, fresh.mean_bytes);
}

TEST(Stats, PublishTimeAccrualThroughClient) {
  SimPier::Options opts;
  opts.sim.seed = 3;
  opts.settle_time = 4 * kSecond;
  SimPier net(6, opts);
  ASSERT_TRUE(net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  for (int i = 0; i < 100; ++i) {
    Tuple t("t");
    t.Append("k", Value::Int64(i));
    t.Append("v", Value::Int64(i * 3));
    ASSERT_TRUE(net.client(0)->Publish("t", t).ok());
    net.RunFor(100 * kMillisecond);
  }
  ASSERT_TRUE(net.stats()->Has("t"));
  TableStats st = net.stats()->Snapshot("t");
  EXPECT_EQ(st.tuples, 100u);
  EXPECT_GT(st.mean_bytes, 0);
  EXPECT_GT(st.distinct, 60) << "100 distinct keys through a k=64 sketch";
  EXPECT_LT(st.distinct, 170);
  EXPECT_GT(st.rate_per_sec, 0) << "tuples arrived over a nonzero span";
}

TEST(Stats, SysStatsRoundTripThroughQuery) {
  SimPier::Options opts;
  opts.sim.seed = 5;
  opts.settle_time = 6 * kSecond;
  SimPier net(8, opts);
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("ev").PartitionBy({"src"})).ok());
  // Publish through MANY clients: they share one registry, whose rows all
  // carry ONE origin — folding must not multiply the counts.
  for (int i = 0; i < 100; ++i) {
    Tuple t("ev");
    t.Append("src", Value::Int64(i % 10));
    t.Append("n", Value::Int64(i));
    ASSERT_TRUE(net.client(i % net.size())->Publish("ev", t).ok());
  }
  ASSERT_TRUE(net.client(0)->PublishStats().ok());
  ASSERT_TRUE(net.client(3)->PublishStats().ok());
  net.RunFor(3 * kSecond);

  // The stats are now ordinary soft state: query them like any table.
  auto q = net.client(4)->Query(
      Sql("SELECT * FROM sys.stats WHERE table = 'ev' TIMEOUT 6s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  ASSERT_FALSE(rows.empty()) << "sys.stats row should be queryable";

  // A fresh registry (a different node's view) folds the rows back in.
  StatsRegistry fresh;
  for (const Tuple& row : rows) {
    ASSERT_TRUE(fresh.Fold(row).ok()) << row.ToString();
  }
  ASSERT_TRUE(fresh.Has("ev"));
  TableStats st = fresh.Snapshot("ev");
  EXPECT_EQ(st.tuples, 100u);
  EXPECT_GT(st.mean_bytes, 0);
  EXPECT_GT(st.distinct, 5) << "10 distinct sources";
  EXPECT_LT(st.distinct, 20);
}

TEST(Stats, OperatorExecutionAccruesThroughPutExchange) {
  SimPier::Options opts;
  opts.sim.seed = 9;
  opts.settle_time = 6 * kSecond;
  SimPier net(6, opts);
  ASSERT_TRUE(net.catalog()->Register(TableSpec("t").PartitionBy({"k"})).ok());
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("derived").PartitionBy({"k"})).ok());
  for (int i = 0; i < 12; ++i) {
    Tuple t("t");
    t.Append("k", Value::Int64(i));
    ASSERT_TRUE(net.client(i % net.size())->Publish("t", t).ok());
  }
  net.RunFor(2 * kSecond);

  // A UFL materialization: scan t everywhere, republish into `derived`.
  auto q = net.client(0)->Query(Ufl(R"(
    query { timeout = 6s; }
    graph g broadcast {
      src: scan [ns=t];
      out: put  [ns=derived, key=k];
      src -> out;
    }
  )"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  net.RunFor(8 * kSecond);

  ASSERT_TRUE(net.stats()->Has("derived"))
      << "operator Put into an application namespace must accrue stats";
  EXPECT_EQ(net.stats()->Snapshot("derived").tuples, 12u);
  EXPECT_FALSE(net.stats()->Has("q" + std::to_string(q->id()) + ".join"))
      << "per-query rendezvous namespaces stay out of the registry";
}

// ---------------------------------------------------------------------------
// Optimizer decisions
// ---------------------------------------------------------------------------

CostParams Params(double nodes) {
  CostParams p;
  p.nodes = nodes;
  return p;
}

TEST(CostModel, PutBatchAmortizesMessagesNotBytes) {
  CostParams unbatched = Params(64);
  CostParams batched = Params(64);
  batched.put_batch = 16;
  Cost a = CostModel(unbatched).DhtPut(1600, 80);
  Cost b = CostModel(batched).DhtPut(1600, 80);
  // 16 same-owner items share a frame: 1/16th the messages, same payload.
  EXPECT_DOUBLE_EQ(b.messages, a.messages / 16.0);
  EXPECT_DOUBLE_EQ(b.bytes, a.bytes);
  EXPECT_LT(CostModel(batched).Total(b), CostModel(unbatched).Total(a));
  // put_batch=1 (the default) is exactly the unbatched pricing.
  Cost c = CostModel(Params(64)).DhtPut(1600, 80);
  EXPECT_DOUBLE_EQ(c.messages, a.messages);
  EXPECT_DOUBLE_EQ(c.bytes, a.bytes);
}

TEST(CostModel, BatchingDiscountSyncsThroughSetPublishBatching) {
  // The client mirrors its publish-batching knob into the cost params its
  // optimizer prices with, so Explain under batching sees the discount.
  SimPier net(4);
  PierClient* c = net.client(0);
  EXPECT_DOUBLE_EQ(c->cost_params().put_batch, 1.0);
  c->SetPublishBatching(64, 0);
  EXPECT_DOUBLE_EQ(c->cost_params().put_batch, 64.0);
  c->SetPublishBatching(0, 0);
  EXPECT_DOUBLE_EQ(c->cost_params().put_batch, 1.0);
}

TEST(Optimizer, SmallProbeLargeIndexedBuildPicksFetchMatches) {
  StatsRegistry reg;
  Seed(&reg, "probe", 100, 100, 8);
  Seed(&reg, "build", 5000, 5000, 8);
  Optimizer opt(&reg, CostModel(Params(64)));
  std::vector<JoinInput> inputs = {{"probe", {"k"}, false},
                                   {"build", {"j"}, false}};
  std::vector<JoinEdge> edges = {{0, 1, "j", "j"}};
  auto steps = opt.PlanJoins(inputs, edges);
  ASSERT_TRUE(steps.ok()) << steps.status().ToString();
  ASSERT_EQ(steps->size(), 1u);
  const JoinStep& s = (*steps)[0];
  EXPECT_EQ(s.strategy, JoinStrategy::kFetchMatches);
  EXPECT_TRUE(s.stats_based);
  EXPECT_EQ(s.inner, 1) << "the indexed side is probed";
  // Acceptance: the chosen strategy's message estimate beats SymHashJoin's.
  double rehash_msgs = -1;
  for (const auto& [strategy, cost] : s.alternatives) {
    if (strategy == JoinStrategy::kRehash) rehash_msgs = cost.messages;
  }
  ASSERT_GE(rehash_msgs, 0) << "rehash must always be a candidate";
  EXPECT_LT(s.cost.messages, rehash_msgs);
}

TEST(Optimizer, StrategyFlipsAcrossBloomCrossover) {
  // Fat probed side, neither side indexed on the join column. With a tiny
  // builder key set the Bloom prefilter pays for itself; as the builder's
  // distinct count approaches the probed side's, the filter prunes nothing
  // and plain rehash wins.
  auto plan_with_builder_distinct = [](int builder_distinct) {
    StatsRegistry reg;
    Seed(&reg, "big", 4000, 4000, 200);
    Seed(&reg, "small", 4000, builder_distinct, 8);
    Optimizer opt(&reg, CostModel(Params(64)));
    std::vector<JoinInput> inputs = {{"big", {"pk"}, false},
                                     {"small", {"pk"}, false}};
    std::vector<JoinEdge> edges = {{0, 1, "x", "y"}};
    auto steps = opt.PlanJoins(inputs, edges);
    EXPECT_TRUE(steps.ok());
    EXPECT_EQ(steps->size(), 1u);
    return (*steps)[0].strategy;
  };
  EXPECT_EQ(plan_with_builder_distinct(40), JoinStrategy::kBloom)
      << "builder keys cover 1% of probe keys: prefilter prunes 99%";
  EXPECT_EQ(plan_with_builder_distinct(4000), JoinStrategy::kRehash)
      << "full key containment: the filter passes everything and only adds "
         "overhead";
}

TEST(Optimizer, NoUsableStatsFallsBackToDefaults) {
  StatsRegistry reg;
  Seed(&reg, "a", 10, 10);  // below min_sample_tuples
  Seed(&reg, "b", 2000, 2000);
  Optimizer opt(&reg, CostModel(Params(64)));
  std::vector<JoinInput> inputs = {{"a", {"x"}, false}, {"b", {"y"}, false}};
  std::vector<JoinEdge> edges = {{0, 1, "x", "y"}};
  auto steps = opt.PlanJoins(inputs, edges);
  ASSERT_TRUE(steps.ok());
  const JoinStep& s = (*steps)[0];
  EXPECT_FALSE(s.stats_based);
  EXPECT_EQ(s.outer, 0);
  EXPECT_EQ(s.inner, 1);
  EXPECT_EQ(s.strategy, JoinStrategy::kFetchMatches)
      << "historical default: inner indexed on the join attribute";
}

TEST(Optimizer, AggregationFlipsWithDataDensity) {
  StatsRegistry reg;
  Seed(&reg, "t", 100, 100);
  // Dense: most of a 16-node network holds data -> the tree pays off.
  Optimizer dense(&reg, CostModel(Params(16)));
  AggDecision d = dense.ChooseAggStrategy("t", 0, false);
  ASSERT_TRUE(d.stats_based);
  EXPECT_EQ(d.strategy, "hier");
  // Sparse: 100 tuples across 1000 nodes -> flat only touches data holders.
  Optimizer sparse(&reg, CostModel(Params(1000)));
  AggDecision s = sparse.ChooseAggStrategy("t", 0, false);
  ASSERT_TRUE(s.stats_based);
  EXPECT_EQ(s.strategy, "flat");
  // No stats: empty decision, caller keeps its default.
  Optimizer none(&reg, CostModel(Params(16)));
  EXPECT_TRUE(none.ChooseAggStrategy("unknown", 0, false).strategy.empty());
}

// ---------------------------------------------------------------------------
// Compiler integration
// ---------------------------------------------------------------------------

SqlOptions BaseOptions(uint64_t query_id) {
  SqlOptions o;
  o.tables["t"] = TableHint{{"k"}};
  o.tables["s"] = TableHint{{"y"}};
  o.query_id = query_id;
  return o;
}

TEST(SqlOptimizer, NoStatsPlansAreByteIdenticalToDefaults) {
  StatsRegistry empty;
  Optimizer opt(&empty, CostModel(Params(64)));
  for (const char* sql : {
           "SELECT a, b FROM t WHERE a > 3 TIMEOUT 5s",
           "SELECT k, count(*) AS c FROM t GROUP BY k",
           "SELECT * FROM t a, s b WHERE a.k = b.y AND a.v > 1",
           "SELECT * FROM t a, s b WHERE a.v = b.w",
           "SELECT k, count(*) AS c FROM t GROUP BY k ORDER BY c DESC "
           "LIMIT 4",
       }) {
    SqlOptions plain = BaseOptions(99);
    SqlOptions optimized = BaseOptions(99);
    optimized.optimizer = &opt;
    auto a = CompileSql(sql, plain);
    auto b = CompileSql(sql, optimized);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(a->Encode(), b->Encode()) << sql;
  }
}

TEST(SqlOptimizer, UnknownAggStrategyIsRejected) {
  SqlOptions o = BaseOptions(0);
  o.agg_strategy = "bogus";
  auto r = CompileSql("SELECT count(*) FROM t", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
  for (const char* ok : {"flat", "hier", "auto"}) {
    SqlOptions good = BaseOptions(0);
    good.agg_strategy = ok;
    EXPECT_TRUE(CompileSql("SELECT count(*) FROM t", good).ok()) << ok;
  }
}

TEST(SqlOptimizer, StatsFlipJoinStrategyAndExplainShowsIt) {
  StatsRegistry reg;
  Seed(&reg, "t", 80, 80);        // small probe side
  Seed(&reg, "s", 4000, 4000);    // large build side, indexed on y
  Optimizer opt(&reg, CostModel(Params(64)));
  SqlOptions o = BaseOptions(7);
  o.optimizer = &opt;
  PlanExplain explain;
  auto plan =
      CompileSql("SELECT * FROM t a, s b WHERE a.k = b.y", o, &explain);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(explain.joins.size(), 1u);
  EXPECT_EQ(explain.joins[0].strategy, JoinStrategy::kFetchMatches);
  EXPECT_TRUE(explain.joins[0].stats_based);
  int fm_ops = 0;
  for (const OpSpec& op : plan->graphs[0].ops)
    fm_ops += op.kind == OpKind::kFetchMatches;
  EXPECT_EQ(fm_ops, 1);
  opt.CostPlan(*plan, &explain);
  EXPECT_GT(explain.total.messages, 0);
  std::string text = explain.ToString();
  EXPECT_NE(text.find("fetch-matches"), std::string::npos) << text;
}

TEST(SqlOptimizer, BloomPlanCompilesAndValidates) {
  StatsRegistry reg;
  Seed(&reg, "big", 4000, 4000, 200);
  Seed(&reg, "small", 4000, 40, 8);
  Optimizer opt(&reg, CostModel(Params(64)));
  SqlOptions o;
  o.tables["big"] = TableHint{{"pk"}};
  o.tables["small"] = TableHint{{"pk"}};
  o.query_id = 11;
  o.optimizer = &opt;
  PlanExplain explain;
  auto plan = CompileSql("SELECT * FROM big r, small s WHERE r.x = s.y", o,
                         &explain);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(explain.joins.size(), 1u);
  EXPECT_EQ(explain.joins[0].strategy, JoinStrategy::kBloom);
  int creates = 0, probes = 0, joins = 0;
  for (const OpGraph& g : plan->graphs) {
    for (const OpSpec& op : g.ops) {
      creates += op.kind == OpKind::kBloomCreate;
      probes += op.kind == OpKind::kBloomProbe;
      joins += op.kind == OpKind::kSymHashJoin;
    }
  }
  EXPECT_EQ(creates, 1);
  EXPECT_EQ(probes, 1);
  EXPECT_EQ(joins, 1);
}

TEST(SqlOptimizer, ThreeWayJoinCompilesAsAChain) {
  SqlOptions o;
  o.tables["orders"] = TableHint{{"oid"}};
  o.tables["cust"] = TableHint{{"cid"}};
  o.tables["item"] = TableHint{{"iid"}};
  o.query_id = 13;
  auto plan = CompileSql(
      "SELECT * FROM orders o, cust c, item i "
      "WHERE o.cust = c.cid AND o.item = i.iid",
      o);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Both inners are indexed on their join attribute: one graph, two chained
  // Fetch Matches probes.
  ASSERT_EQ(plan->graphs.size(), 1u);
  int fm = 0;
  for (const OpSpec& op : plan->graphs[0].ops)
    fm += op.kind == OpKind::kFetchMatches;
  EXPECT_EQ(fm, 2);
  // Disconnected multi-way joins are still rejected.
  auto bad = CompileSql(
      "SELECT * FROM orders o, cust c, item i WHERE o.cust = c.cid", o);
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------------------------
// End-to-end: three-way join answers + EXPLAIN through the client
// ---------------------------------------------------------------------------

TEST(OptimizerE2E, ThreeWayJoinStreamsCorrectAnswers) {
  SimPier::Options opts;
  opts.sim.seed = 77;
  opts.settle_time = 8 * kSecond;
  SimPier net(10, opts);
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("orders").PartitionBy({"oid"})).ok());
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("cust").PartitionBy({"cid"})).ok());
  ASSERT_TRUE(
      net.catalog()->Register(TableSpec("item").PartitionBy({"iid"})).ok());
  for (int i = 0; i < 6; ++i) {
    Tuple t("orders");
    t.Append("oid", Value::Int64(i));
    t.Append("cust", Value::Int64(i % 3));
    t.Append("item", Value::Int64(i % 2));
    ASSERT_TRUE(net.client(i % net.size())->Publish("orders", t).ok());
  }
  for (int i = 0; i < 3; ++i) {
    Tuple t("cust");
    t.Append("cid", Value::Int64(i));
    t.Append("name", Value::String("c" + std::to_string(i)));
    ASSERT_TRUE(net.client((i + 2) % net.size())->Publish("cust", t).ok());
  }
  for (int i = 0; i < 2; ++i) {
    Tuple t("item");
    t.Append("iid", Value::Int64(i));
    t.Append("label", Value::String("i" + std::to_string(i)));
    ASSERT_TRUE(net.client((i + 5) % net.size())->Publish("item", t).ok());
  }
  net.RunFor(3 * kSecond);

  auto q = net.client(1)->Query(
      Sql("SELECT * FROM orders o, cust c, item i "
          "WHERE o.cust = c.cid AND o.item = i.iid TIMEOUT 12s"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  ASSERT_EQ(rows.size(), 6u) << "every order matches one cust and one item";
  std::set<int64_t> oids;
  for (const Tuple& t : rows) {
    ASSERT_TRUE(t.Has("name")) << t.ToString();
    ASSERT_TRUE(t.Has("label")) << t.ToString();
    oids.insert(t.Get("oid")->int64_unchecked());
  }
  EXPECT_EQ(oids.size(), 6u);
}

TEST(OptimizerE2E, ExplainSelectsCheapPlanFromAccruedStats) {
  SimPier::Options opts;
  opts.sim.seed = 91;
  opts.settle_time = 8 * kSecond;
  SimPier net(10, opts);
  ASSERT_TRUE(net.catalog()->Register(TableSpec("r").PartitionBy({"x"})).ok());
  ASSERT_TRUE(net.catalog()->Register(TableSpec("s").PartitionBy({"y"})).ok());
  for (int i = 0; i < 80; ++i) {  // small probe side
    Tuple t("r");
    t.Append("x", Value::Int64(i));
    ASSERT_TRUE(net.client(i % net.size())->Publish("r", t).ok());
  }
  for (int i = 0; i < 400; ++i) {  // large indexed build side
    Tuple t("s");
    t.Append("y", Value::Int64(i));
    t.Append("b", Value::Int64(1000 + i));
    ASSERT_TRUE(net.client(i % net.size())->Publish("s", t).ok());
  }
  net.RunFor(2 * kSecond);

  auto ex = net.client(3)->Explain(
      Sql("SELECT * FROM r a, s b WHERE a.x = b.y TIMEOUT 10s"));
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  ASSERT_EQ(ex->detail.joins.size(), 1u);
  const JoinStep& s = ex->detail.joins[0];
  EXPECT_TRUE(s.stats_based) << "480 tuples accrued: stats must be usable";
  EXPECT_TRUE(s.strategy == JoinStrategy::kFetchMatches ||
              s.strategy == JoinStrategy::kBloom)
      << JoinStrategyName(s.strategy);
  double rehash_msgs = -1;
  for (const auto& [strategy, cost] : s.alternatives) {
    if (strategy == JoinStrategy::kRehash) rehash_msgs = cost.messages;
  }
  ASSERT_GE(rehash_msgs, 0);
  EXPECT_LT(s.cost.messages, rehash_msgs)
      << "chosen plan must beat the SymHashJoin estimate on messages";

  // The explained plan runs and produces the join result.
  auto q = net.client(3)->Query(std::move(ex->plan));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<Tuple> rows = q->Collect();
  EXPECT_EQ(rows.size(), 80u) << "every r row has exactly one s match";
}

// ---------------------------------------------------------------------------
// FoldForeign (the background refresh's ingest path)
// ---------------------------------------------------------------------------

TEST(Stats, FoldForeignSkipsOwnOriginRows) {
  StatsRegistry mine;
  mine.set_origin(7);
  Seed(&mine, "t", 50, 10);

  StatsRegistry other;
  other.set_origin(9);
  Seed(&other, "t", 30, 5);

  // A refresh query streams back every published row, including this
  // registry's own: folding those must not double count.
  ASSERT_TRUE(mine.FoldForeign(mine.ToSysTuple("t")).ok());
  EXPECT_EQ(mine.Snapshot("t").tuples, 50u) << "own row must be a no-op";

  ASSERT_TRUE(mine.FoldForeign(other.ToSysTuple("t")).ok());
  EXPECT_EQ(mine.Snapshot("t").tuples, 80u) << "foreign rows fold in";

  EXPECT_FALSE(mine.FoldForeign(Tuple("junk")).ok());
}

// ---------------------------------------------------------------------------
// Replanner policy
// ---------------------------------------------------------------------------

/// An aggregation PlanExplain with just the strategy decision filled in.
PlanExplain AggExplain(const std::string& strategy) {
  PlanExplain ex;
  ex.agg.strategy = strategy;
  return ex;
}

/// A one-graph flat-style plan over `table`: scan -> partial -> put.
QueryPlan FlatAggPlan(const std::string& table) {
  QueryPlan plan;
  plan.continuous = true;
  OpGraph& g = plan.AddGraph();
  OpSpec& scan = g.AddOp(OpKind::kScan);
  scan.Set("ns", table);
  uint32_t tail = scan.id;
  OpSpec& part = g.AddOp(OpKind::kGroupBy);
  part.Set("keys", "k");
  part.Set("aggs", "count:*:c");
  part.Set("mode", "partial");
  uint32_t part_id = part.id;
  g.Connect(tail, part_id, 0);
  OpSpec& put = g.AddOp(OpKind::kPut);
  put.Set("ns", "q1.agg");
  put.Set("key", "k");
  g.Connect(part_id, put.id, 0);
  return plan;
}

/// The hier-style equivalent: scan -> hieragg -> result.
QueryPlan HierAggPlan(const std::string& table) {
  QueryPlan plan;
  plan.continuous = true;
  OpGraph& g = plan.AddGraph();
  OpSpec& scan = g.AddOp(OpKind::kScan);
  scan.Set("ns", table);
  uint32_t tail = scan.id;
  OpSpec& agg = g.AddOp(OpKind::kHierAgg);
  agg.Set("keys", "k");
  agg.Set("aggs", "count:*:c");
  uint32_t agg_id = agg.id;
  g.Connect(tail, agg_id, 0);
  OpSpec& res = g.AddOp(OpKind::kResult);
  g.Connect(agg_id, res.id, 0);
  return plan;
}

TEST(Replanner, FingerprintTracksDecisionsNotCosts) {
  PlanExplain a = AggExplain("flat");
  PlanExplain b = AggExplain("flat");
  b.total = Cost{999, 999999};  // cost numbers must not affect identity
  EXPECT_EQ(Replanner::Fingerprint(a), Replanner::Fingerprint(b));
  EXPECT_NE(Replanner::Fingerprint(a), Replanner::Fingerprint(AggExplain("hier")));

  PlanExplain join1;
  JoinStep s;
  s.outer_name = "r";
  s.outer_col = "x";
  s.inner_name = "s";
  s.inner_col = "y";
  s.strategy = JoinStrategy::kRehash;
  join1.joins.push_back(s);
  PlanExplain join2 = join1;
  join2.joins[0].strategy = JoinStrategy::kBloom;
  EXPECT_NE(Replanner::Fingerprint(join1), Replanner::Fingerprint(join2));
  PlanExplain join3 = join1;
  join3.joins[0].stats_based = true;  // same strategy, now confirmed by stats
  EXPECT_EQ(Replanner::Fingerprint(join1), Replanner::Fingerprint(join3));
}

TEST(Replanner, UnchangedStrategyNeverSwaps) {
  StatsRegistry reg;
  Seed(&reg, "t", 5000, 40);
  Replanner rp(&reg, CostModel(CostParams{}));
  std::string fp = Replanner::Fingerprint(AggExplain("flat"));
  ReplanDecision d = rp.Consider(FlatAggPlan("t"), fp, FlatAggPlan("t"),
                                 AggExplain("flat"));
  EXPECT_FALSE(d.swap);
  EXPECT_FALSE(d.strategy_changed);
}

TEST(Replanner, SwapsOnlyPastTheCostRatioThreshold) {
  CostParams params;
  params.nodes = 32;
  StatsRegistry reg;
  // Dense table: far more tuples than nodes, so the flat plan's per-window
  // rehash of partials dwarfs the aggregation tree's 2N reports.
  Seed(&reg, "t", 5000, 40);

  std::string flat_fp = Replanner::Fingerprint(AggExplain("flat"));
  Replanner rp(&reg, CostModel(params));
  ReplanDecision d = rp.Consider(FlatAggPlan("t"), flat_fp, HierAggPlan("t"),
                                 AggExplain("hier"));
  EXPECT_TRUE(d.strategy_changed);
  ASSERT_GT(d.fresh_total, 0);
  EXPECT_GT(d.ratio, 1.0) << "hier must estimate cheaper on the dense table";
  EXPECT_EQ(d.swap, d.ratio >= rp.options().min_cost_ratio);

  // A sky-high threshold vetoes the same strategy change.
  Replanner::Options strict;
  strict.min_cost_ratio = 1e9;
  ReplanDecision vetoed =
      Replanner(&reg, CostModel(params), strict)
          .Consider(FlatAggPlan("t"), flat_fp, HierAggPlan("t"),
                    AggExplain("hier"));
  EXPECT_TRUE(vetoed.strategy_changed);
  EXPECT_FALSE(vetoed.swap);

  // A permissive threshold takes it.
  Replanner::Options loose;
  loose.min_cost_ratio = 1.0;
  ReplanDecision taken =
      Replanner(&reg, CostModel(params), loose)
          .Consider(FlatAggPlan("t"), flat_fp, HierAggPlan("t"),
                    AggExplain("hier"));
  EXPECT_TRUE(taken.swap);
}

}  // namespace
}  // namespace pier
