// Smoke tests for the Physical Runtime Environment (§3.1.3): the same node
// code that runs in simulation runs against real sockets on localhost.
// These tests exercise the loopback only and use ephemeral-ish ports; they
// keep wall-clock waits short.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "overlay/dht.h"
#include "runtime/physical_runtime.h"
#include "runtime/udpcc.h"

namespace pier {
namespace {

uint16_t TestPort(int offset) {
  // Spread across runs to dodge TIME_WAIT collisions.
  return static_cast<uint16_t>(36200 + (::getpid() % 500) + offset);
}

TEST(PhysicalRuntime, UdpRoundTripOverLoopback) {
  PhysicalRuntime::Options opts;
  opts.rng_seed = 1;
  PhysicalRuntime rt(opts);

  struct Echo : UdpHandler {
    PhysicalRuntime* rt = nullptr;
    uint16_t port = 0;
    void HandleUdp(const NetAddress& src, std::string_view p) override {
      EXPECT_TRUE(rt->UdpSend(port, src, "echo:" + std::string(p)).ok());
    }
  } echo;
  echo.rt = &rt;
  echo.port = TestPort(0);

  struct Client : UdpHandler {
    PhysicalRuntime* rt = nullptr;
    std::string got;
    void HandleUdp(const NetAddress&, std::string_view p) override {
      got = std::string(p);
      rt->Stop();
    }
  } client;
  client.rt = &rt;

  ASSERT_TRUE(rt.UdpListen(echo.port, &echo).ok());
  uint16_t client_port = TestPort(1);
  ASSERT_TRUE(rt.UdpListen(client_port, &client).ok());

  NetAddress echo_addr{0x7f000001, echo.port};
  rt.ScheduleEvent(0, [&]() {
    ASSERT_TRUE(rt.UdpSend(client_port, echo_addr, "ping").ok());
  });
  // Watchdog so a lost datagram cannot hang the test binary.
  rt.ScheduleEvent(3 * kSecond, [&]() { rt.Stop(); });
  rt.Run();
  EXPECT_EQ(client.got, "echo:ping");
}

TEST(PhysicalRuntime, TimersFireInOrderOnWallClock) {
  PhysicalRuntime rt;
  std::vector<int> order;
  rt.ScheduleEvent(20 * kMillisecond, [&]() { order.push_back(2); });
  rt.ScheduleEvent(5 * kMillisecond, [&]() { order.push_back(1); });
  rt.ScheduleEvent(40 * kMillisecond, [&]() {
    order.push_back(3);
    rt.Stop();
  });
  TimeUs before = rt.Now();
  rt.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_GE(rt.Now() - before, 40 * kMillisecond);
}

TEST(PhysicalRuntime, UdpCcReliabilityRunsUnmodifiedOnRealSockets) {
  // The point of the VRI: UdpCc is the exact same code the simulator runs.
  PhysicalRuntime::Options aopts;
  aopts.advertised_port = TestPort(2);
  PhysicalRuntime rt(aopts);

  UdpCc a(&rt, TestPort(2));
  UdpCc b(&rt, TestPort(3));
  std::vector<std::string> got;
  b.set_message_handler([&](const NetAddress&, std::string_view p) {
    got.emplace_back(p);
  });
  int delivered = 0;
  rt.ScheduleEvent(0, [&]() {
    for (int i = 0; i < 5; ++i) {
      a.Send(NetAddress{0x7f000001, b.port()}, "m" + std::to_string(i),
             [&](const Status& s) {
               delivered += s.ok();
               if (delivered == 5) rt.Stop();
             });
    }
  });
  rt.ScheduleEvent(5 * kSecond, [&]() { rt.Stop(); });  // watchdog
  rt.Run();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(got.size(), 5u);
}

TEST(PhysicalRuntime, DhtNodeBootsOnRealSockets) {
  // A single-node DHT (its own bootstrap) over the Physical Runtime: put,
  // then get through the full two-phase protocol on loopback.
  PhysicalRuntime::Options opts;
  opts.advertised_port = TestPort(4);
  PhysicalRuntime rt(opts);

  Dht::Options dopts;
  dopts.router.port = TestPort(4);
  Dht dht(&rt, dopts);
  dht.Join(NetAddress{});  // first node

  std::string got;
  rt.ScheduleEvent(50 * kMillisecond, [&]() {
    dht.Put("tbl", "k", "s", "physical", 60 * kSecond);
    rt.ScheduleEvent(200 * kMillisecond, [&]() {
      dht.Get("tbl", "k", [&](const Status& s, std::vector<DhtItem> items) {
        if (s.ok() && !items.empty()) got = items[0].value;
        rt.Stop();
      });
    });
  });
  rt.ScheduleEvent(5 * kSecond, [&]() { rt.Stop(); });  // watchdog
  rt.Run();
  EXPECT_EQ(got, "physical");
}

}  // namespace
}  // namespace pier
