// Unit and property tests for the data layer (Value, Tuple) and the
// expression language (evaluation, parsing, wire round trips, best-effort
// semantics).

#include <gtest/gtest.h>

#include "data/tuple.h"
#include "data/value.h"
#include "qp/expr.h"
#include "util/random.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(Value, TypeTagsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(*Value::Bool(true).AsBool(), true);
  EXPECT_EQ(*Value::Int64(-7).AsInt64(), -7);
  EXPECT_DOUBLE_EQ(*Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(*Value::String("hi").AsString(), "hi");
  EXPECT_EQ(*Value::Bytes(std::string("\x00\x01", 2)).AsBytes(),
            std::string_view("\x00\x01", 2));
  // Wrong-type access is an error, not UB.
  EXPECT_FALSE(Value::Int64(1).AsBool().ok());
  EXPECT_FALSE(Value::String("x").AsInt64().ok());
  // Numeric widening only.
  EXPECT_DOUBLE_EQ(*Value::Int64(3).AsDouble(), 3.0);
  EXPECT_FALSE(Value::String("3").AsDouble().ok());
}

TEST(Value, CompareWithinAndAcrossNumericTypes) {
  EXPECT_EQ(*Value::Compare(Value::Int64(1), Value::Int64(2)), -1);
  EXPECT_EQ(*Value::Compare(Value::Int64(2), Value::Int64(2)), 0);
  EXPECT_EQ(*Value::Compare(Value::Double(2.5), Value::Int64(2)), 1);
  EXPECT_EQ(*Value::Compare(Value::Int64(3), Value::Double(3.0)), 0);
  EXPECT_EQ(*Value::Compare(Value::String("a"), Value::String("b")), -1);
  // Cross-family comparison is a type error (best-effort discard upstream).
  EXPECT_FALSE(Value::Compare(Value::Int64(1), Value::String("1")).ok());
  EXPECT_FALSE(Value::Compare(Value::Bool(true), Value::Int64(1)).ok());
  // Strings and bytes are distinct types.
  EXPECT_FALSE(Value::Compare(Value::String("x"), Value::Bytes("x")).ok());
}

TEST(Value, EqualNumericsHashAndCanonicalizeEqually) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Double(42.0).Hash());
  EXPECT_EQ(Value::Int64(42).CanonicalString(),
            Value::Double(42.0).CanonicalString());
  EXPECT_NE(Value::Int64(42).CanonicalString(),
            Value::String("42").CanonicalString());
  EXPECT_NE(Value::Double(42.5).CanonicalString(),
            Value::Int64(42).CanonicalString());
}

TEST(Value, WireRoundTripAllTypes) {
  std::vector<Value> values = {
      Value::Null(),          Value::Bool(false),     Value::Bool(true),
      Value::Int64(0),        Value::Int64(-1234567), Value::Int64(INT64_MAX),
      Value::Double(0.0),     Value::Double(-3.75),   Value::String(""),
      Value::String("hello"), Value::Bytes(std::string("\x00\xff", 2)),
  };
  for (const Value& v : values) {
    WireWriter w;
    v.EncodeTo(&w);
    WireReader r(w.data());
    Result<Value> back = Value::DecodeFrom(&r);
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(*back, v) << v.ToString();
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(Value, DecodeRejectsGarbage) {
  WireReader r1(std::string_view("\xee", 1));  // bad tag
  EXPECT_FALSE(Value::DecodeFrom(&r1).ok());
  WireReader r2(std::string_view("\x02\x01", 2));  // truncated int64
  EXPECT_FALSE(Value::DecodeFrom(&r2).ok());
}

// ---------------------------------------------------------------------------
// Tuple
// ---------------------------------------------------------------------------

TEST(Tuple, SelfDescribingAccess) {
  Tuple t("fw", {{"src", Value::String("1.2.3.4")}, {"port", Value::Int64(80)}});
  EXPECT_EQ(t.table(), "fw");
  ASSERT_TRUE(t.Has("src"));
  EXPECT_FALSE(t.Has("dst"));
  EXPECT_EQ(t.Get("dst"), nullptr);
  EXPECT_FALSE(t.GetChecked("dst").ok());
  EXPECT_EQ(*t.GetChecked("port")->AsInt64(), 80);
}

TEST(Tuple, SetOverwritesFirstOrAppends) {
  Tuple t("t");
  t.Set("a", Value::Int64(1));
  t.Set("a", Value::Int64(2));
  EXPECT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(*t.Get("a")->AsInt64(), 2);
}

TEST(Tuple, ProjectSkipsMissingColumns) {
  Tuple t("t", {{"a", Value::Int64(1)}, {"b", Value::Int64(2)}});
  Tuple p = t.Project({"b", "nope", "a"});
  ASSERT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "b");
  EXPECT_EQ(p.column(1).name, "a");
}

TEST(Tuple, PartitionKeyIsStablePerValueAndAttrSet) {
  Tuple t1("t", {{"k", Value::Int64(5)}, {"x", Value::String("a")}});
  Tuple t2("other", {{"x", Value::String("b")}, {"k", Value::Int64(5)}});
  EXPECT_EQ(t1.PartitionKey({"k"}), t2.PartitionKey({"k"}));
  EXPECT_NE(t1.PartitionKey({"k"}), t1.PartitionKey({"x"}));
  // Missing attributes still produce a well-defined key.
  EXPECT_EQ(t1.PartitionKey({"zz"}), Tuple("e").PartitionKey({"zz"}));
}

TEST(Tuple, WireRoundTripAndTrailingByteRejection) {
  Tuple t("tbl", {{"a", Value::Int64(1)},
                  {"b", Value::String("two")},
                  {"c", Value::Double(3.0)},
                  {"d", Value::Null()}});
  std::string wire = t.Encode();
  Result<Tuple> back = Tuple::Decode(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
  EXPECT_FALSE(Tuple::Decode(wire + "x").ok()) << "trailing bytes";
  EXPECT_FALSE(Tuple::Decode(wire.substr(0, wire.size() - 2)).ok())
      << "truncation";
}

/// Property sweep: random tuples round-trip bit-exactly.
class TupleRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TupleRoundTrip, RandomTuple) {
  Rng rng(GetParam());
  Tuple t("tbl" + std::to_string(rng.Uniform(10)));
  int cols = static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < cols; ++i) {
    Value v;
    switch (rng.Uniform(5)) {
      case 0: v = Value::Null(); break;
      case 1: v = Value::Bool(rng.Bernoulli(0.5)); break;
      case 2: v = Value::Int64(static_cast<int64_t>(rng.Next())); break;
      case 3: v = Value::Double(rng.NextDouble() * 1e6); break;
      default: {
        std::string s;
        for (uint64_t j = rng.Uniform(20); j > 0; --j)
          s.push_back(static_cast<char>(rng.Uniform(256)));
        v = Value::String(std::move(s));
      }
    }
    t.Append("c" + std::to_string(i), std::move(v));
  }
  Result<Tuple> back = Tuple::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
  EXPECT_EQ(back->Hash(), t.Hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleRoundTrip, ::testing::Range<uint64_t>(1, 26));

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Tuple Row() {
  return Tuple("r", {{"a", Value::Int64(10)},
                     {"b", Value::Int64(3)},
                     {"s", Value::String("Hello World")},
                     {"f", Value::Double(2.5)}});
}

TEST(Expr, ParseAndEvalComparisons) {
  struct Case {
    const char* text;
    bool want;
  };
  for (const Case& c : {Case{"a = 10", true}, {"a != 10", false},
                        {"a > 9", true}, {"a >= 11", false}, {"b < 4", true},
                        {"b <= 2", false}, {"a <> 3", true}}) {
    auto e = ParseExpr(c.text);
    ASSERT_TRUE(e.ok()) << c.text;
    auto got = (*e)->EvalPredicate(Row());
    ASSERT_TRUE(got.ok()) << c.text;
    EXPECT_EQ(*got, c.want) << c.text;
  }
}

TEST(Expr, ParseAndEvalBooleanLogic) {
  auto e = ParseExpr("a = 10 and (b = 3 or b = 4) and not (a < 5)");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(*(*e)->EvalPredicate(Row()));
}

TEST(Expr, ArithmeticPrecedenceAndTypes) {
  auto e = ParseExpr("a + b * 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*(*e)->Eval(Row())->AsInt64(), 16) << "mul binds tighter";
  auto e2 = ParseExpr("(a + b) * 2");
  EXPECT_EQ(*(*e2)->Eval(Row())->AsInt64(), 26);
  auto e3 = ParseExpr("a / b");
  EXPECT_EQ(*(*e3)->Eval(Row())->AsInt64(), 3) << "integer division";
  auto e4 = ParseExpr("a % b");
  EXPECT_EQ(*(*e4)->Eval(Row())->AsInt64(), 1);
  auto e5 = ParseExpr("f * 2");
  EXPECT_DOUBLE_EQ(*(*e5)->Eval(Row())->AsDouble(), 5.0);
  auto e6 = ParseExpr("-b");
  EXPECT_EQ(*(*e6)->Eval(Row())->AsInt64(), -3);
}

TEST(Expr, DivisionByZeroIsAnErrorNotUB) {
  auto e = ParseExpr("a / (b - 3)");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE((*e)->Eval(Row()).ok());
}

TEST(Expr, StringFunctions) {
  EXPECT_EQ(*(*ParseExpr("length(s)"))->Eval(Row())->AsInt64(), 11);
  EXPECT_EQ(*(*ParseExpr("lower(s)"))->Eval(Row())->AsString(), "hello world");
  EXPECT_TRUE(*(*ParseExpr("contains(s, 'World')"))->EvalPredicate(Row()));
  EXPECT_TRUE(*(*ParseExpr("startswith(s, 'Hel')"))->EvalPredicate(Row()));
  EXPECT_FALSE(*(*ParseExpr("contains(s, 'xyz')"))->EvalPredicate(Row()));
}

TEST(Expr, BestEffortErrors) {
  // Missing column.
  EXPECT_FALSE((*ParseExpr("nope = 1"))->EvalPredicate(Row()).ok());
  // Type mismatch in comparison.
  EXPECT_FALSE((*ParseExpr("s > 3"))->EvalPredicate(Row()).ok());
  // Non-boolean used as predicate.
  EXPECT_FALSE((*ParseExpr("a + 1"))->EvalPredicate(Row()).ok());
}

TEST(Expr, StringLiteralsWithEscapes) {
  auto e = ParseExpr("s = 'it''s'");
  ASSERT_TRUE(e.ok());
  Tuple t("r", {{"s", Value::String("it's")}});
  EXPECT_TRUE(*(*e)->EvalPredicate(t));
}

TEST(Expr, ParseErrors) {
  EXPECT_FALSE(ParseExpr("").ok());
  EXPECT_FALSE(ParseExpr("a = ").ok());
  EXPECT_FALSE(ParseExpr("(a = 1").ok());
  EXPECT_FALSE(ParseExpr("a = 'unterminated").ok());
  EXPECT_FALSE(ParseExpr("a = 1 extra").ok());
}

TEST(Expr, WireRoundTripPreservesSemantics) {
  const char* exprs[] = {
      "a = 10 and b < 5",
      "contains(s, 'World') or f >= 2.5",
      "not (a + b * 2 = 16)",
      "length(lower(s)) % 4 = 3",
  };
  for (const char* text : exprs) {
    auto e = ParseExpr(text);
    ASSERT_TRUE(e.ok()) << text;
    auto back = Expr::Decode((*e)->Encode());
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ((*back)->ToString(), (*e)->ToString()) << text;
    auto v1 = (*e)->EvalPredicate(Row());
    auto v2 = (*back)->EvalPredicate(Row());
    ASSERT_EQ(v1.ok(), v2.ok());
    if (v1.ok()) {
      EXPECT_EQ(*v1, *v2);
    }
  }
}

TEST(Expr, ExtractEqualityConstant) {
  auto e = ParseExpr("b > 1 and k = 7 and s = 'x'");
  ASSERT_TRUE(e.ok());
  Value v;
  EXPECT_TRUE((*e)->ExtractEqualityConstant("k", &v));
  EXPECT_EQ(*v.AsInt64(), 7);
  EXPECT_TRUE((*e)->ExtractEqualityConstant("s", &v));
  EXPECT_EQ(*v.AsString(), "x");
  EXPECT_FALSE((*e)->ExtractEqualityConstant("b", &v)) << "> is not equality";
  // Under OR nothing is certain:
  auto e2 = ParseExpr("k = 7 or k = 8");
  EXPECT_FALSE((*e2)->ExtractEqualityConstant("k", &v));
}

TEST(Expr, ExtractRangeTightensBounds) {
  auto e = ParseExpr("t >= 10 and t < 20 and x = 1");
  ASSERT_TRUE(e.ok());
  int64_t lo = INT64_MIN, hi = INT64_MAX;
  EXPECT_TRUE((*e)->ExtractRange("t", &lo, &hi));
  EXPECT_EQ(lo, 10);
  EXPECT_EQ(hi, 19);
  // Reversed operand order normalizes.
  auto e2 = ParseExpr("5 <= t and 30 > t");
  lo = INT64_MIN, hi = INT64_MAX;
  EXPECT_TRUE((*e2)->ExtractRange("t", &lo, &hi));
  EXPECT_EQ(lo, 5);
  EXPECT_EQ(hi, 29);
}

}  // namespace
}  // namespace pier
