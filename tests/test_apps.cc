// Application-level tests: the Gnutella baseline, the PIER filesharing
// search, and the netmon top-K query against ground truth.

#include <gtest/gtest.h>

#include "apps/filesharing.h"
#include "apps/gnutella.h"
#include "apps/netmon.h"
#include "apps/workloads.h"

namespace pier {
namespace {

TEST(Workloads, CorpusReplicationFollowsPopularity) {
  CorpusOptions copts;
  copts.num_files = 500;
  copts.seed = 3;
  FilesharingCorpus corpus(copts, 100);
  ASSERT_EQ(corpus.files().size(), 500u);
  // Popular files (low rank) must have strictly more replicas than the tail.
  EXPECT_GT(corpus.files()[0].hosts.size(), corpus.files()[499].hosts.size());
  EXPECT_EQ(corpus.files()[499].hosts.size(), 1u);
  // Every file exists somewhere and mentions the configured keyword count.
  for (const CorpusFile& f : corpus.files()) {
    EXPECT_GE(f.hosts.size(), 1u);
    EXPECT_EQ(f.keywords.size(), 3u);
  }
}

TEST(Workloads, RareQueriesTargetThinlyReplicatedFiles) {
  CorpusOptions copts;
  copts.num_files = 1000;
  copts.seed = 5;
  FilesharingCorpus corpus(copts, 50);
  Rng rng(99);
  auto rare = corpus.MakeQueries(50, 1, /*rare_only=*/true, 5, &rng);
  ASSERT_EQ(rare.size(), 50u);
  for (const auto& q : rare) {
    EXPECT_TRUE(q.rare);
    EXPECT_LE(corpus.KeywordFrequency(q.keywords[0]), 5u);
  }
}

TEST(Workloads, FirewallGroundTruthIsSkewed) {
  FirewallOptions fopts;
  fopts.events_per_node = 50;
  FirewallWorkload wl(fopts);
  auto top = wl.GroundTruthTopK(100, 10);
  ASSERT_EQ(top.size(), 10u);
  // Zipf(1.1): the single top source must dominate the 10th by a wide margin.
  EXPECT_GE(top[0].second, 3 * top[9].second);
  // Determinism: same seed, same logs.
  auto again = wl.GroundTruthTopK(100, 10);
  EXPECT_EQ(top, again);
}

TEST(Gnutella, FloodFindsWidelyReplicatedFile) {
  GnutellaSim::Options opts;
  opts.sim.seed = 17;
  GnutellaSim net(60, opts);
  // Place a file with 12 replicas.
  for (uint32_t h = 0; h < 60; h += 5) net.node(h)->AddLocalFile(42, {7, 8, 9});
  TimeUs lat = net.RunQuery(1, {7, 8}, /*ttl=*/4, 10 * kSecond);
  EXPECT_GE(lat, 0) << "popular file should be found";
  EXPECT_LT(lat, 2 * kSecond);
}

TEST(Gnutella, TtlBoundsTheFloodHorizon) {
  GnutellaSim::Options opts;
  opts.sim.seed = 19;
  opts.degree = 4;
  GnutellaSim net(200, opts);
  // A unique file at one far-away node: TTL 2 flood almost surely misses it,
  // the same query with a large TTL finds it.
  net.node(150)->AddLocalFile(1, {500});
  TimeUs miss = net.RunQuery(0, {500}, /*ttl=*/2, 5 * kSecond);
  EXPECT_LT(miss, 0) << "rare item should be missed with a tiny TTL";
  TimeUs hit = net.RunQuery(0, {500}, /*ttl=*/12, 20 * kSecond);
  EXPECT_GE(hit, 0) << "large TTL should reach the holder";
}

TEST(Filesharing, PierFindsRareFileViaKeywordIndex) {
  SimPier::Options popts;
  popts.sim.seed = 29;
  popts.settle_time = 8 * kSecond;
  SimPier net(30, popts);

  CorpusOptions copts;
  copts.num_files = 300;
  copts.vocab_size = 400;
  copts.seed = 31;
  FilesharingCorpus corpus(copts, 30);
  FilesharingApp app(&net);
  app.PublishCorpus(corpus);

  Rng rng(41);
  auto queries = corpus.MakeQueries(5, 1, /*rare_only=*/true, 3, &rng);
  ASSERT_FALSE(queries.empty());
  int found = 0;
  for (const auto& q : queries) {
    auto r = app.Search(2, q.keywords, 8 * kSecond, 10 * kSecond);
    found += r.found;
    if (r.found) {
      EXPECT_GT(r.first_result_latency, 0);
    }
  }
  EXPECT_EQ(found, static_cast<int>(queries.size()))
      << "the DHT index finds rare items regardless of replication";
}

TEST(Netmon, TopKMatchesGroundTruthFlat) {
  SimPier::Options popts;
  popts.sim.seed = 37;
  SimPier net(24, popts);
  FirewallOptions fopts;
  fopts.events_per_node = 30;
  fopts.seed = 43;
  FirewallWorkload wl(fopts);
  NetmonApp app(&net);
  app.LoadLogs(wl);

  auto truth = wl.GroundTruthTopK(24, 5);
  auto got = app.TopKSources(3, 5, 16 * kSecond, "flat");
  ASSERT_EQ(got.rows.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got.rows[i].first, truth[i].first) << "rank " << i;
    EXPECT_EQ(got.rows[i].second, static_cast<int64_t>(truth[i].second))
        << "rank " << i;
  }
}

TEST(Netmon, TopKMatchesGroundTruthHier) {
  SimPier::Options popts;
  popts.sim.seed = 47;
  SimPier net(24, popts);
  FirewallOptions fopts;
  fopts.events_per_node = 30;
  fopts.seed = 43;
  FirewallWorkload wl(fopts);
  NetmonApp app(&net);
  app.LoadLogs(wl);

  auto truth = wl.GroundTruthTopK(24, 5);
  auto got = app.TopKSources(5, 5, 16 * kSecond, "hier");
  ASSERT_EQ(got.rows.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got.rows[i].first, truth[i].first) << "rank " << i;
    EXPECT_EQ(got.rows[i].second, static_cast<int64_t>(truth[i].second))
        << "rank " << i;
  }
}

}  // namespace
}  // namespace pier
